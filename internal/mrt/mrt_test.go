package mrt

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"strings"
	"testing"
	"time"

	"hybridrel/internal/bgp"
)

var testTime = time.Date(2010, 8, 1, 0, 0, 0, 0, time.UTC)

func testPeerTable() *PeerIndexTable {
	return &PeerIndexTable{
		CollectorID: CollectorAddr(1),
		ViewName:    "rv-test",
		Peers: []Peer{
			{BGPID: netip.MustParseAddr("10.0.0.1"), Addr: netip.MustParseAddr("10.0.0.1"), ASN: 65001},
			{BGPID: netip.MustParseAddr("10.0.0.2"), Addr: netip.MustParseAddr("2001:db8::2"), ASN: 196613},
		},
	}
}

func v4RIB(t *testing.T) *RIB {
	t.Helper()
	rib := &RIB{
		Seq:    7,
		Prefix: netip.MustParsePrefix("198.51.100.0/24"),
	}
	var e RIBEntry
	e.PeerIndex = 0
	e.OriginatedAt = testTime
	e.Attrs.HasOrigin = true
	e.Attrs.Origin = bgp.OriginIGP
	e.Attrs.ASPath = bgp.Sequence(65001, 65010, 65020)
	e.Attrs.NextHop = netip.MustParseAddr("10.0.0.1")
	e.Attrs.Communities = []bgp.Community{bgp.MakeCommunity(65010, 100)}
	rib.Entries = append(rib.Entries, e)
	return rib
}

func v6RIB(t *testing.T) *RIB {
	t.Helper()
	rib := &RIB{
		Seq:    8,
		Prefix: netip.MustParsePrefix("2001:db8:100::/40"),
	}
	var e RIBEntry
	e.PeerIndex = 1
	e.OriginatedAt = testTime
	e.Attrs.HasOrigin = true
	e.Attrs.Origin = bgp.OriginIGP
	e.Attrs.ASPath = bgp.Sequence(196613, 65010)
	e.Attrs.HasLocalPref = true
	e.Attrs.LocalPref = 300
	e.Attrs.MPReach = &bgp.MPReach{
		AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast,
		NextHop: []netip.Addr{netip.MustParseAddr("2001:db8::2")},
	}
	rib.Entries = append(rib.Entries, e)
	return rib
}

func TestTableDumpV2RoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePeerIndexTable(testTime, testPeerTable()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(testTime, v4RIB(t)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(testTime, v6RIB(t)); err != nil {
		t.Fatal(err)
	}
	if w.BytesWritten() != int64(buf.Len()) {
		t.Errorf("BytesWritten = %d, buffer has %d", w.BytesWritten(), buf.Len())
	}

	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records, want 3", len(recs))
	}

	pit, ok := recs[0].Message.(*PeerIndexTable)
	if !ok {
		t.Fatalf("record 0 is %T", recs[0].Message)
	}
	if pit.ViewName != "rv-test" || len(pit.Peers) != 2 {
		t.Errorf("peer table = %+v", pit)
	}
	if pit.Peers[1].ASN != 196613 || !pit.Peers[1].Addr.Is6() {
		t.Errorf("IPv6 4-byte peer mangled: %+v", pit.Peers[1])
	}
	if !recs[0].Timestamp.Equal(testTime) {
		t.Errorf("timestamp = %v", recs[0].Timestamp)
	}

	rib4, ok := recs[1].Message.(*RIB)
	if !ok || recs[1].Subtype != SubtypeRIBIPv4Unicast {
		t.Fatalf("record 1: %T subtype %d", recs[1].Message, recs[1].Subtype)
	}
	if rib4.Prefix != netip.MustParsePrefix("198.51.100.0/24") || rib4.Seq != 7 {
		t.Errorf("v4 RIB = %+v", rib4)
	}
	if got := rib4.Entries[0].Attrs.ASPath.String(); got != "65001 65010 65020" {
		t.Errorf("v4 AS_PATH = %q", got)
	}
	if !rib4.Entries[0].OriginatedAt.Equal(testTime) {
		t.Errorf("originated = %v", rib4.Entries[0].OriginatedAt)
	}

	rib6, ok := recs[2].Message.(*RIB)
	if !ok || recs[2].Subtype != SubtypeRIBIPv6Unicast {
		t.Fatalf("record 2: %T subtype %d", recs[2].Message, recs[2].Subtype)
	}
	e := rib6.Entries[0]
	if e.PeerIndex != 1 || !e.Attrs.HasLocalPref || e.Attrs.LocalPref != 300 {
		t.Errorf("v6 entry = %+v", e)
	}
	if e.Attrs.MPReach == nil || e.Attrs.MPReach.AFI != bgp.AFIIPv6 ||
		e.Attrs.MPReach.NextHop[0] != netip.MustParseAddr("2001:db8::2") {
		t.Errorf("v6 MP_REACH = %+v", e.Attrs.MPReach)
	}
}

func TestWriterOrderEnforcement(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRIB(testTime, v4RIB(t)); err == nil {
		t.Error("RIB before peer index accepted")
	}
	if err := w.WritePeerIndexTable(testTime, testPeerTable()); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePeerIndexTable(testTime, testPeerTable()); err == nil {
		t.Error("duplicate peer index accepted")
	}
	bad := v4RIB(t)
	bad.Entries[0].PeerIndex = 9
	if err := w.WriteRIB(testTime, bad); err == nil {
		t.Error("out-of-range peer index accepted")
	}
}

func TestBGP4MPRoundTrip(t *testing.T) {
	upd := &bgp.Update{NLRI: []netip.Prefix{netip.MustParsePrefix("203.0.113.0/24")}}
	upd.Attrs.HasOrigin = true
	upd.Attrs.Origin = bgp.OriginIGP
	upd.Attrs.ASPath = bgp.Sequence(65001, 65002)
	upd.Attrs.NextHop = netip.MustParseAddr("10.1.1.1")
	wire, err := upd.Marshal(bgp.Options{ASN4: true})
	if err != nil {
		t.Fatal(err)
	}

	msg := &BGP4MPMessage{
		PeerAS: 196613, LocalAS: 64512, Ifindex: 3, AS4: true,
		PeerAddr:  netip.MustParseAddr("10.1.1.1"),
		LocalAddr: netip.MustParseAddr("10.1.1.2"),
		Data:      wire,
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteBGP4MP(testTime, msg); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := recs[0].Message.(*BGP4MPMessage)
	if !ok {
		t.Fatalf("record is %T", recs[0].Message)
	}
	if got.PeerAS != 196613 || got.LocalAS != 64512 || !got.AS4 || got.Ifindex != 3 {
		t.Errorf("BGP4MP header = %+v", got)
	}
	if got.PeerAddr != msg.PeerAddr || got.LocalAddr != msg.LocalAddr {
		t.Error("addresses mangled")
	}
	u, err := got.Update(bgp.Options{ASN4: true})
	if err != nil {
		t.Fatal(err)
	}
	if u.Attrs.ASPath.String() != "65001 65002" || len(u.NLRI) != 1 {
		t.Errorf("embedded update = %+v", u)
	}
}

func TestBGP4MPTwoByteAndIPv6(t *testing.T) {
	msg := &BGP4MPMessage{
		PeerAS: 65001, LocalAS: 64512, AS4: false,
		PeerAddr:  netip.MustParseAddr("2001:db8::1"),
		LocalAddr: netip.MustParseAddr("2001:db8::2"),
		Data:      []byte{1, 2, 3},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteBGP4MP(testTime, msg); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := recs[0].Message.(*BGP4MPMessage)
	if got.AS4 || got.PeerAS != 65001 || got.AFI != bgp.AFIIPv6 {
		t.Errorf("two-byte v6 BGP4MP = %+v", got)
	}
	if !bytes.Equal(got.Data, []byte{1, 2, 3}) {
		t.Error("payload mangled")
	}
	// Four-byte ASN cannot be written in a two-byte record.
	bad := &BGP4MPMessage{PeerAS: 196613, LocalAS: 1, AS4: false,
		PeerAddr: netip.MustParseAddr("10.0.0.1"), LocalAddr: netip.MustParseAddr("10.0.0.2")}
	if err := w.WriteBGP4MP(testTime, bad); err == nil {
		t.Error("4-byte ASN accepted in 2-byte record")
	}
	// Mixed address families are rejected.
	mixed := &BGP4MPMessage{PeerAS: 1, LocalAS: 2, AS4: true,
		PeerAddr: netip.MustParseAddr("10.0.0.1"), LocalAddr: netip.MustParseAddr("2001:db8::2")}
	if err := w.WriteBGP4MP(testTime, mixed); err == nil {
		t.Error("mixed-family BGP4MP accepted")
	}
}

func TestUnknownRecordTypesSurfaceRaw(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRaw(testTime, 99, 7, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := recs[0].Message.(RawMessage)
	if !ok || !bytes.Equal(raw, []byte{0xAA, 0xBB}) {
		t.Errorf("raw record = %T %v", recs[0].Message, recs[0].Message)
	}
	if recs[0].Type != 99 || recs[0].Subtype != 7 {
		t.Error("raw header lost")
	}
}

func TestReaderErrors(t *testing.T) {
	// Truncated header: clean EOF only when zero bytes; partial header
	// must error.
	if _, err := ReadAll(strings.NewReader("\x00\x01")); err == nil {
		t.Error("partial header accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRaw(testTime, 99, 0, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadAll(bytes.NewReader(cut)); err == nil {
		t.Error("truncated body accepted")
	}
	// Oversized declared length.
	huge := make([]byte, headerLen)
	huge[8] = 0xFF
	huge[9] = 0xFF
	huge[10] = 0xFF
	huge[11] = 0xFF
	if _, err := ReadAll(bytes.NewReader(huge)); err == nil {
		t.Error("oversized record length accepted")
	}
	// Empty archive is fine.
	recs, err := ReadAll(bytes.NewReader(nil))
	if err != nil || len(recs) != 0 {
		t.Errorf("empty archive: %v %v", recs, err)
	}
}

func TestReaderStreamsManyRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePeerIndexTable(testTime, testPeerTable()); err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		rib := v4RIB(t)
		rib.Seq = uint32(i)
		if err := w.WriteRIB(testTime.Add(time.Duration(i)*time.Second), rib); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	count := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rib, ok := rec.Message.(*RIB); ok {
			if rib.Seq != uint32(count-1) {
				t.Fatalf("sequence out of order: %d at record %d", rib.Seq, count)
			}
		}
		count++
	}
	if count != n+1 {
		t.Errorf("streamed %d records, want %d", count, n+1)
	}
}

func TestPeerIndexValidation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	bad := testPeerTable()
	bad.CollectorID = netip.MustParseAddr("2001:db8::1")
	if err := w.WritePeerIndexTable(testTime, bad); err == nil {
		t.Error("IPv6 collector ID accepted")
	}
	bad2 := testPeerTable()
	bad2.Peers[0].BGPID = netip.MustParseAddr("2001:db8::1")
	if err := w.WritePeerIndexTable(testTime, bad2); err == nil {
		t.Error("IPv6 BGP ID accepted")
	}
	bad3 := testPeerTable()
	bad3.Peers[0].Addr = netip.Addr{}
	if err := w.WritePeerIndexTable(testTime, bad3); err == nil {
		t.Error("addressless peer accepted")
	}
}

func TestTruncatedInteriorRecords(t *testing.T) {
	// Build a valid archive, then corrupt the interior of the RIB record
	// while keeping the MRT length intact: decode must error, not panic.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePeerIndexTable(testTime, testPeerTable()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(testTime, v6RIB(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := headerLen; i < len(raw); i += 3 {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0xFF
		_, err := ReadAll(bytes.NewReader(mut))
		_ = err // any outcome but a panic is acceptable
	}
	if _, err := ReadAll(bytes.NewReader(raw)); err != nil {
		t.Fatalf("pristine archive failed: %v", err)
	}
	// ErrTruncated surfaces wrapped through record decoding.
	pitOnly := raw[:headerLen+4] // cut inside the peer index body
	// Fix the declared length so the reader passes it to the decoder.
	binary := pitOnly[8:12]
	binary[0], binary[1], binary[2], binary[3] = 0, 0, 0, 4
	_, err := ReadAll(bytes.NewReader(pitOnly))
	if err == nil || !errors.Is(err, bgp.ErrTruncated) {
		t.Errorf("interior truncation error = %v, want ErrTruncated", err)
	}
}
