package mrt

// Tests for the visitor decode path: equivalence with Next, the
// zero-allocation steady state, the no-retain scratch reuse contract,
// and the bounded retained body scratch.

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"time"
)

// manyRecordArchive builds an archive with a peer index table plus n
// alternating v4/v6 RIB records.
func manyRecordArchive(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePeerIndexTable(testTime, testPeerTable()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		var rib *RIB
		if i%2 == 0 {
			rib = v4RIB(t)
		} else {
			rib = v6RIB(t)
		}
		rib.Seq = uint32(i)
		if err := w.WriteRIB(testTime.Add(time.Duration(i)*time.Second), rib); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestVisitMatchesNext pins the compatibility contract: cloning every
// record the visitor produces yields exactly the records ReadAll (the
// Next loop) returns.
func TestVisitMatchesNext(t *testing.T) {
	archive := manyRecordArchive(t, 64)
	want, err := ReadAll(bytes.NewReader(archive))
	if err != nil {
		t.Fatal(err)
	}
	var got []*Record
	r := NewReader(bytes.NewReader(archive))
	if err := r.Visit(func(rec *Record) error {
		got = append(got, rec.Clone())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("visit produced %d records, Next loop %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d differs:\nvisit: %+v\nnext:  %+v", i, got[i], want[i])
		}
	}
}

// TestVisitReusesRecord pins the no-retain contract from the other
// side: the pointer handed to the callback is the same every time, and
// its contents are overwritten by the next record — exactly what the
// zero-allocation design promises and what callers must copy around.
func TestVisitReusesRecord(t *testing.T) {
	archive := manyRecordArchive(t, 8)
	var first *Record
	var lastSeq uint32
	count := 0
	r := NewReader(bytes.NewReader(archive))
	if err := r.Visit(func(rec *Record) error {
		if count == 0 {
			first = rec
		} else if rec != first {
			t.Fatal("visitor handed out a new Record pointer")
		}
		if rib, ok := rec.Message.(*RIB); ok {
			lastSeq = rib.Seq
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 9 {
		t.Fatalf("visited %d records, want 9", count)
	}
	// After the walk the shared record holds the last RIB, not the first.
	if rib, ok := first.Message.(*RIB); !ok || rib.Seq != lastSeq || lastSeq != 7 {
		t.Fatalf("retained record = %+v, want the final RIB (seq 7)", first.Message)
	}
}

// TestVisitSteadyStateAllocs pins the headline property: one full pass
// over a many-record archive allocates O(1) — the reader, its buffers,
// and the (once-per-archive) peer index table — not O(records).
func TestVisitSteadyStateAllocs(t *testing.T) {
	const n = 512
	archive := manyRecordArchive(t, n)
	r := NewReader(bytes.NewReader(archive))
	visit := func() {
		count := 0
		if err := r.Visit(func(rec *Record) error {
			count++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if count != n+1 {
			t.Fatalf("visited %d records, want %d", count, n+1)
		}
	}
	visit() // warm the scratch: entry slices, AS paths, MP_REACH
	allocs := testing.AllocsPerRun(10, func() {
		r.Reset(bytes.NewReader(archive))
		visit()
	})
	// Budget: the bytes.Reader, the peer index table and its slices —
	// all O(1) per archive. 512 RIB records must contribute nothing.
	if allocs > 16 {
		t.Fatalf("visit pass allocates %.1f objects for %d records; want O(1)", allocs, n)
	}
}

// TestVisitErrorStopsStream confirms the visitor surfaces decode errors
// and fn errors, and stops on them.
func TestVisitErrorStopsStream(t *testing.T) {
	bad := rawRecord(TypeTableDumpV2, SubtypeRIBIPv4Unicast, 2, []byte{0, 0})
	r := NewReader(bytes.NewReader(append(manyRecordArchive(t, 2), bad...)))
	count := 0
	if err := r.Visit(func(*Record) error { count++; return nil }); err == nil {
		t.Fatal("malformed trailing record not reported")
	}
	if count != 3 {
		t.Fatalf("visited %d records before the error, want 3", count)
	}

	sentinel := io.ErrClosedPipe
	r = NewReader(bytes.NewReader(manyRecordArchive(t, 4)))
	count = 0
	err := r.Visit(func(*Record) error {
		count++
		if count == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel || count != 2 {
		t.Fatalf("fn error: visited %d, err %v; want 2, %v", count, err, sentinel)
	}
}

// TestReaderScratchBounded pins the retained-scratch cap: a record
// larger than maxRetainedBody decodes fine, but must not pin its body
// buffer on the reader for the rest of the archive.
func TestReaderScratchBounded(t *testing.T) {
	big := make([]byte, maxRetainedBody+4096)
	for i := range big {
		big[i] = byte(i)
	}
	var stream []byte
	stream = append(stream, rawRecord(99, 0, uint32(len(big)), big)...)
	stream = append(stream, rawRecord(99, 0, 3, []byte{1, 2, 3})...)
	stream = append(stream, manyRecordArchive(t, 4)...)

	r := NewReader(bytes.NewReader(stream))
	sizes := []int{}
	if err := r.Visit(func(rec *Record) error {
		if raw, ok := rec.Message.(RawMessage); ok {
			sizes = append(sizes, len(raw))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 2 || sizes[0] != len(big) || sizes[1] != 3 {
		t.Fatalf("raw record sizes = %v", sizes)
	}
	if cap(r.body) > maxRetainedBody {
		t.Fatalf("retained body scratch is %d bytes after an oversized record; cap is %d",
			cap(r.body), maxRetainedBody)
	}

	// The oversized body must decode correctly despite the one-off buffer.
	r = NewReader(bytes.NewReader(stream))
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if raw, ok := rec.Message.(RawMessage); !ok || !bytes.Equal(raw, big) {
		t.Fatal("oversized record body mangled")
	}
}

// TestReaderReset pins the pooling contract: one reader drains two
// archives back to back, with offsets (and thus error messages)
// restarting from zero.
func TestReaderReset(t *testing.T) {
	archive := manyRecordArchive(t, 4)
	r := NewReader(bytes.NewReader(archive))
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	r.Reset(bytes.NewReader(archive[:headerLen+2])) // truncated mid-body
	_, err := r.Next()
	if err == nil || err == io.EOF {
		t.Fatalf("truncated archive after Reset: %v", err)
	}
	if want := "offset 0"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("error after Reset does not restart offsets: %v", err)
	}
}
