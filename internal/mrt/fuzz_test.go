package mrt_test

// Native fuzz target for the MRT reader — the first of the three
// untrusted decoders (MRT, RPSL, snapshot). The committed seed corpus
// under testdata/fuzz/FuzzReader is generated from a tiny gen world
// (regenerate with WRITE_FUZZ_CORPUS=1 go test -run TestWriteFuzzCorpus);
// the inline seeds cover the record-type dispatch edges.
//
// Run locally with:
//
//	go test -fuzz=FuzzReader -fuzztime=30s ./internal/mrt
//
// The test lives in the external package so it can borrow the
// generator/collector stack (which itself imports mrt) for seeds.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"hybridrel/internal/gen"
	"hybridrel/internal/mrt"
	"hybridrel/internal/testutil"
)

// tinyArchives collects a miniature world's MRT archives — real
// PEER_INDEX_TABLE + RIB records at a size suitable for fuzz seeds.
func tinyArchives(t testing.TB) *testutil.Archives {
	t.Helper()
	cfg := gen.SmallConfig()
	cfg.NumASes = 48
	cfg.NumTier1 = 3
	cfg.V6OnlyPeerings = 8
	cfg.NumRelaxers = 1
	cfg.NumNoiseLeakers = 1
	cfg.HubPeerings = 3
	cfg.NumVantages = 4
	in, err := gen.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arch, err := testutil.Collect(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	return arch
}

// record assembles one raw MRT record for handcrafted seeds.
func record(typ, sub uint16, body []byte) []byte {
	hdr := make([]byte, 12)
	binary.BigEndian.PutUint32(hdr[0:4], 1280620800) // 2010-08-01
	binary.BigEndian.PutUint16(hdr[4:6], typ)
	binary.BigEndian.PutUint16(hdr[6:8], sub)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(body)))
	return append(hdr, body...)
}

func FuzzReader(f *testing.F) {
	arch := tinyArchives(f)
	for _, a := range append(arch.MRT4, arch.MRT6...) {
		f.Add(a)
		// Truncation mid-record and mid-header.
		f.Add(a[:len(a)/2])
		f.Add(a[:7])
	}
	// Record-type dispatch edges: unknown type (kept raw), BGP4MP with
	// a short body, an empty peer-index table, a length field pointing
	// past the body.
	f.Add(record(99, 7, []byte("opaque")))
	f.Add(record(16, 1, []byte{0, 1, 0, 2}))
	f.Add(record(13, 1, []byte{0, 0, 0, 0, 0, 0, 0, 0}))
	f.Add(record(17, 4, []byte{0, 0, 0, 1}))
	huge := record(13, 2, nil)
	binary.BigEndian.PutUint32(huge[8:12], 1<<20)
	f.Add(huge)
	// Lying length fields, minimized from the reader audit (the same
	// shapes live in the committed corpus as seed-length-*): declared
	// length past the stream end, declared length shorter than the RIB
	// fixed fields, and an under-declared length that desyncs the
	// stream mid-record.
	past := record(13, 2, []byte{1, 2, 3, 4})
	binary.BigEndian.PutUint32(past[8:12], 100)
	f.Add(past)
	f.Add(record(13, 2, []byte{0, 0}))
	under := record(13, 2, []byte{0, 0, 0, 7, 24, 10, 9, 0, 0, 0})
	binary.BigEndian.PutUint32(under[8:12], 4)
	f.Add(under)
	// An oversized record (beyond the reader's retained-scratch cap, so
	// it decodes from a one-off buffer) followed by a minimal one:
	// guards the scratch-shrink logic on the visitor path. The same
	// shape is committed as seed-scratch-shrink.
	f.Add(scratchShrinkSeed())

	f.Fuzz(func(t *testing.T, data []byte) {
		// The reader must never panic on untrusted bytes: it returns
		// records until the first malformed one, then a descriptive
		// error (or a clean EOF).
		r := mrt.NewReader(bytes.NewReader(data))
		nextCount := 0
		var nextErr error
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if err.Error() == "" {
					t.Fatal("malformed record produced an empty error")
				}
				nextErr = err
				break
			}
			if rec.Message == nil {
				t.Fatal("decoded record carries a nil message")
			}
			nextCount++
		}
		// The visitor path is the same decoder without the clone: it
		// must agree with the Next loop on both the record count and
		// the success-vs-error outcome.
		v := mrt.NewReader(bytes.NewReader(data))
		visitCount := 0
		visitErr := v.Visit(func(rec *mrt.Record) error {
			if rec.Message == nil {
				t.Fatal("visited record carries a nil message")
			}
			visitCount++
			return nil
		})
		if visitCount != nextCount {
			t.Fatalf("visitor decoded %d records, Next loop %d", visitCount, nextCount)
		}
		if (visitErr == nil) != (nextErr == nil) {
			t.Fatalf("visitor error %v, Next loop error %v", visitErr, nextErr)
		}
		if visitErr != nil && visitErr.Error() == "" {
			t.Fatal("visitor produced an empty error")
		}
	})
}

// scratchShrinkSeed builds the oversized-then-minimal record pair: the
// first record's body exceeds the reader's retained-scratch cap (64
// KiB), the second is a minimal follow-on proving the stream stays in
// sync after the one-off buffer.
func scratchShrinkSeed() []byte {
	big := bytes.Repeat([]byte{'a'}, 66*1024)
	seed := record(99, 0, big)
	return append(seed, record(99, 0, []byte{'b'})...)
}

// TestWriteFuzzCorpus regenerates the committed seed corpus from the
// tiny generated world. Gated behind WRITE_FUZZ_CORPUS so normal runs
// never touch the checked-in files.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	arch := tinyArchives(t)
	dir := filepath.Join("testdata", "fuzz", "FuzzReader")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("seed-ipv4-archive", arch.MRT4[0])
	write("seed-ipv6-archive", arch.MRT6[0])
	write("seed-ipv4-truncated", arch.MRT4[0][:len(arch.MRT4[0])/3])
	write("seed-scratch-shrink", scratchShrinkSeed())
}
