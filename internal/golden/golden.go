// Package golden pins the headline numbers of the canonical small
// test world in one shared location. The pipeline, snapshot, and
// serve golden tests (and the CLI smoke tests) all reference these
// values, so the copies cannot drift independently. It deliberately
// lives apart from package testutil: golden imports core, and core's
// own tests import testutil.
package golden

import (
	"reflect"
	"testing"

	"hybridrel/internal/asrel"
	"hybridrel/internal/core"
	"hybridrel/internal/valley"
)

// Numbers is the pinned set of headline numbers for a canonical world.
type Numbers struct {
	Coverage        core.Coverage
	Hybrid          int
	DualClassified  int
	ByClass         map[asrel.HybridClass]int
	Paths           int
	PathsWithHybrid int
	Valley          valley.Stats
}

// Small returns the headline numbers of the canonical small test
// world — BuildWorld(gen.SmallConfig()), equivalently Synthesize at two
// collectors with the default seed 42 — pinned once here so the
// pipeline, snapshot, and serve golden tests all reference the same
// values and cannot drift independently. Any change to the generator,
// collection, ingestion, inference, or the dual-stack join shows up as
// a diff against these numbers.
func Small() Numbers {
	return Numbers{
		Coverage: core.Coverage{
			Paths6: 3765, Links6: 333, Links4: 1169, DualStack: 208,
			Classified6: 242, ClassifiedDual: 146, ClassifiedDualBoth: 144,
		},
		Hybrid:         23,
		DualClassified: 144,
		ByClass: map[asrel.HybridClass]int{
			asrel.HybridPeerTransit: 15,
			asrel.HybridTransitPeer: 7,
			asrel.HybridReversed:    1,
		},
		Paths:           3765,
		PathsWithHybrid: 1353,
		Valley: valley.Stats{
			Total: 3765, ValleyFree: 1753, Valley: 505,
			Unclassified: 1507, Necessary: 192,
		},
	}
}

// AssertSmall fails the test wherever the analysis of the
// canonical small world disagrees with the pinned headline numbers.
func AssertSmall(t testing.TB, a *core.Analysis) {
	t.Helper()
	g := Small()
	if cov := a.Coverage(); cov != g.Coverage {
		t.Errorf("golden coverage = %+v, want %+v", cov, g.Coverage)
	}
	census := a.HybridCensus()
	if census.Hybrid != g.Hybrid || census.DualClassified != g.DualClassified {
		t.Errorf("golden census = %d/%d, want %d/%d",
			census.Hybrid, census.DualClassified, g.Hybrid, g.DualClassified)
	}
	if !reflect.DeepEqual(census.ByClass, g.ByClass) {
		t.Errorf("golden class split = %v, want %v", census.ByClass, g.ByClass)
	}
	if v := a.HybridVisibility(); v.Paths != g.Paths || v.PathsWithHybrid != g.PathsWithHybrid {
		t.Errorf("golden visibility = %d/%d, want %d/%d",
			v.PathsWithHybrid, v.Paths, g.PathsWithHybrid, g.Paths)
	}
	if st := a.ValleyReport(); st != g.Valley {
		t.Errorf("golden valley = %+v, want %+v", st, g.Valley)
	}
}
