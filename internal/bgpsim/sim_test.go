package bgpsim

import (
	"reflect"
	"testing"

	"hybridrel/internal/asrel"
	"hybridrel/internal/bgp"
	"hybridrel/internal/gen"
	"hybridrel/internal/topology"
)

// tiny builds a hand-wired Internet for propagation tests. Links and
// relationships are installed in both planes identically unless the test
// mutates one plane afterwards.
func tiny(links map[asrel.LinkKey]asrel.Rel, vantages ...asrel.ASN) *gen.Internet {
	in := &gen.Internet{
		Cfg:           gen.Config{TEProb: 0},
		ASes:          make(map[asrel.ASN]*gen.AS),
		Graph4:        topology.New(),
		Graph6:        topology.New(),
		Truth4:        asrel.NewTable(),
		Truth6:        asrel.NewTable(),
		VantageLocPrf: make(map[asrel.ASN]bool),
	}
	addAS := func(a asrel.ASN) {
		if in.ASes[a] == nil {
			in.ASes[a] = &gen.AS{ASN: a, IPv6: true, Tier: topology.Tier2}
			in.Order = append(in.Order, a)
			in.Graph4.AddNode(a)
			in.Graph6.AddNode(a)
		}
	}
	for k, r := range links {
		addAS(k.Lo)
		addAS(k.Hi)
		in.Graph4.AddLink(k.Lo, k.Hi)
		in.Graph6.AddLink(k.Lo, k.Hi)
		in.Truth4.SetKey(k, r)
		in.Truth6.SetKey(k, r)
	}
	in.Vantages = append(in.Vantages, vantages...)
	return in
}

// key builds a LinkKey with the relationship given in Lo→Hi orientation.
func key(lo, hi asrel.ASN) asrel.LinkKey { return asrel.Key(lo, hi) }

func TestPropagateChain(t *testing.T) {
	// 1 --p2c--> 2 --p2c--> 3,  1 --p2p-- 4,  4 --p2c--> 5
	in := tiny(map[asrel.LinkKey]asrel.Rel{
		key(1, 2): asrel.P2C,
		key(2, 3): asrel.P2C,
		key(1, 4): asrel.P2P,
		key(4, 5): asrel.P2C,
	})
	s := New(in, asrel.IPv4)
	res, err := s.Propagate(3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		as    asrel.ASN
		class Class
		path  []asrel.ASN
	}{
		{3, ClassCustomer, []asrel.ASN{3}},
		{2, ClassCustomer, []asrel.ASN{2, 3}},
		{1, ClassCustomer, []asrel.ASN{1, 2, 3}},
		{4, ClassPeer, []asrel.ASN{4, 1, 2, 3}},
		{5, ClassProvider, []asrel.ASN{5, 4, 1, 2, 3}},
	}
	for _, c := range cases {
		if got := res.ClassOf(c.as); got != c.class {
			t.Errorf("class(%s) = %s, want %s", c.as, got, c.class)
		}
		if got := res.PathTo(c.as); !reflect.DeepEqual(got, c.path) {
			t.Errorf("path(%s) = %v, want %v", c.as, got, c.path)
		}
	}
	if res.ReachableCount() != 5 {
		t.Errorf("ReachableCount = %d, want 5", res.ReachableCount())
	}
}

func TestPropagateValleyBlocked(t *testing.T) {
	// 10 <-p2c- 1 -p2p- 2 -p2p- 3 -p2c-> 30: no route crosses two
	// consecutive peering links.
	in := tiny(map[asrel.LinkKey]asrel.Rel{
		key(1, 10): asrel.P2C,
		key(1, 2):  asrel.P2P,
		key(2, 3):  asrel.P2P,
		key(3, 30): asrel.P2C,
	})
	s := New(in, asrel.IPv4)
	res, err := s.Propagate(30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Has(1) || res.Has(10) {
		t.Error("peer-learned route was re-exported to a peer")
	}
	if !res.Has(2) {
		t.Error("first peer did not learn the route")
	}
	// Provider-learned routes are not exported to peers either.
	res30 := mustPropagate(t, s, 10)
	if res30.Has(3) || res30.Has(30) {
		t.Error("customer cone escaped through a double peering")
	}
}

func mustPropagate(t *testing.T, s *Sim, origin asrel.ASN) *Result {
	t.Helper()
	res, err := s.Propagate(origin)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSelectionPrefersCustomerOverShorterPeer(t *testing.T) {
	// AS1 can reach origin 9 via a 3-hop customer chain (1→5→6→9) or a
	// 2-hop peer route (1-2, 2→9). Customer class must win.
	in := tiny(map[asrel.LinkKey]asrel.Rel{
		key(1, 5): asrel.P2C, // 5 is 1's customer
		key(5, 6): asrel.P2C,
		key(6, 9): asrel.P2C,
		key(1, 2): asrel.P2P,
		key(2, 9): asrel.P2C,
	})
	s := New(in, asrel.IPv4)
	res := mustPropagate(t, s, 9)
	if got := res.ClassOf(1); got != ClassCustomer {
		t.Fatalf("class(1) = %s, want customer", got)
	}
	want := []asrel.ASN{1, 5, 6, 9}
	if got := res.PathTo(1); !reflect.DeepEqual(got, want) {
		t.Errorf("path(1) = %v, want %v", got, want)
	}
}

func TestSelectionTiebreakLowestNeighbor(t *testing.T) {
	// Origin 9 reachable from 1 via two equal-length customer chains
	// through 3 and 2; the 2-side must win the tiebreak.
	in := tiny(map[asrel.LinkKey]asrel.Rel{
		key(1, 3): asrel.P2C,
		key(3, 9): asrel.P2C,
		key(1, 2): asrel.P2C,
		key(2, 9): asrel.P2C,
	})
	s := New(in, asrel.IPv4)
	res := mustPropagate(t, s, 9)
	want := []asrel.ASN{1, 2, 9}
	if got := res.PathTo(1); !reflect.DeepEqual(got, want) {
		t.Errorf("path(1) = %v, want %v", got, want)
	}
}

func TestLeakRestoresReachability(t *testing.T) {
	// Dispute analogue: tier-1s 1 and 2 are unlinked; 7 is a customer of
	// both; 20 is a stub under 2. Without the leak AS1 cannot reach 20;
	// with it, it can, over a valley path through 7.
	links := map[asrel.LinkKey]asrel.Rel{
		key(1, 7):  asrel.P2C,
		key(2, 7):  asrel.P2C,
		key(2, 20): asrel.P2C,
	}
	in := tiny(links)
	s := New(in, asrel.IPv6) // leaks only apply in the v6 plane
	res := mustPropagate(t, s, 20)
	if res.Has(1) {
		t.Fatal("AS1 reached the origin without any leak")
	}
	in.Leaks = []gen.Leak{{At: 7, Via: 2, To: 1}}
	s = New(in, asrel.IPv6)
	res = mustPropagate(t, s, 20)
	if !res.Has(1) {
		t.Fatal("leak did not restore reachability")
	}
	if got := res.ClassOf(1); got != ClassCustomer {
		t.Errorf("leaked route class at AS1 = %s, want customer (learned from its customer)", got)
	}
	want := []asrel.ASN{1, 7, 2, 20}
	if got := res.PathTo(1); !reflect.DeepEqual(got, want) {
		t.Errorf("leaked path = %v, want %v", got, want)
	}
	// The same leak must not apply in the IPv4 plane.
	s4 := New(in, asrel.IPv4)
	res4 := mustPropagate(t, s4, 20)
	if res4.Has(1) {
		t.Error("leak applied in the IPv4 plane")
	}
}

func TestPropagateUnknownOrigin(t *testing.T) {
	in := tiny(map[asrel.LinkKey]asrel.Rel{key(1, 2): asrel.P2C})
	s := New(in, asrel.IPv4)
	if _, err := s.Propagate(99); err == nil {
		t.Error("unknown origin accepted")
	}
}

func TestViewsCommunitiesAndLocPrf(t *testing.T) {
	// 40 (vantage) --c2p--> 30 --c2p--> ... wait: build 30 provider of
	// 40? We want: vantage 40 learns from provider 30, 30 learns from
	// customer 20, 20 originates. 30 tags, 40 tags, nobody strips.
	in := tiny(map[asrel.LinkKey]asrel.Rel{
		key(30, 40): asrel.P2C, // 30 is provider of 40
		key(20, 30): asrel.C2P, // 20 is customer of 30
	}, 40)
	in.VantageLocPrf[40] = true
	pol30 := &in.ASes[30].Policy
	pol30.DefinesCommunities = true
	pol30.CustomerTag, pol30.PeerTag, pol30.ProviderTag = 100, 200, 300
	pol40 := &in.ASes[40].Policy
	pol40.DefinesCommunities = true
	pol40.CustomerTag, pol40.PeerTag, pol40.ProviderTag = 1000, 2000, 3000
	pol40.LocCustomer, pol40.LocPeer, pol40.LocProvider = 350, 220, 90

	s := New(in, asrel.IPv4)
	res := mustPropagate(t, s, 20)
	views := s.Views(res)
	if len(views) != 1 {
		t.Fatalf("got %d views, want 1", len(views))
	}
	v := views[0]
	if !reflect.DeepEqual(v.Path, []asrel.ASN{40, 30, 20}) {
		t.Fatalf("path = %v", v.Path)
	}
	// 30 learned from its customer 20 → 30:100; 40 learned from its
	// provider 30 → 40:3000.
	want := []bgp.Community{bgp.MakeCommunity(30, 100), bgp.MakeCommunity(40, 3000)}
	if !reflect.DeepEqual(v.Communities, want) {
		t.Errorf("communities = %v, want %v", v.Communities, want)
	}
	if !v.HasLocPrf || v.LocPrf != 90 {
		t.Errorf("LocPrf = %d (has=%v), want 90 (provider band)", v.LocPrf, v.HasLocPrf)
	}
	if v.TE {
		t.Error("TE flagged with TEProb=0")
	}
}

func TestViewsStripping(t *testing.T) {
	// As above, but 40 scrubs communities on ingress: 30's tag is gone,
	// 40's own tag survives.
	in := tiny(map[asrel.LinkKey]asrel.Rel{
		key(30, 40): asrel.P2C,
		key(20, 30): asrel.C2P,
	}, 40)
	pol30 := &in.ASes[30].Policy
	pol30.DefinesCommunities = true
	pol30.CustomerTag = 100
	pol40 := &in.ASes[40].Policy
	pol40.DefinesCommunities = true
	pol40.ProviderTag = 3000
	pol40.Strips = true

	s := New(in, asrel.IPv4)
	views := s.Views(mustPropagate(t, s, 20))
	want := []bgp.Community{bgp.MakeCommunity(40, 3000)}
	if !reflect.DeepEqual(views[0].Communities, want) {
		t.Errorf("communities = %v, want only the vantage tag", views[0].Communities)
	}
}

func TestViewsSelfOrigin(t *testing.T) {
	in := tiny(map[asrel.LinkKey]asrel.Rel{
		key(30, 40): asrel.P2C,
	}, 40)
	in.VantageLocPrf[40] = true
	s := New(in, asrel.IPv4)
	views := s.Views(mustPropagate(t, s, 40))
	if len(views) != 1 {
		t.Fatalf("views = %d", len(views))
	}
	v := views[0]
	if !reflect.DeepEqual(v.Path, []asrel.ASN{40}) || len(v.Communities) != 0 {
		t.Errorf("self view = %+v", v)
	}
	if !v.HasLocPrf || v.LocPrf != 100 {
		t.Errorf("self LocPrf = %d", v.LocPrf)
	}
}

func TestViewsTEDeterministic(t *testing.T) {
	in := tiny(map[asrel.LinkKey]asrel.Rel{
		key(30, 40): asrel.P2C,
		key(20, 30): asrel.C2P,
	}, 40)
	in.Cfg.TEProb = 1.0 // force TE on every decision point
	pol40 := &in.ASes[40].Policy
	pol40.TETags = []uint16{9100, 9200}
	pol40.LocCustomer, pol40.LocPeer, pol40.LocProvider = 350, 220, 90
	in.VantageLocPrf[40] = true
	pol30 := &in.ASes[30].Policy
	pol30.TETags = []uint16{9500}

	s := New(in, asrel.IPv4)
	v1 := s.Views(mustPropagate(t, s, 20))[0]
	v2 := s.Views(mustPropagate(t, s, 20))[0]
	if !reflect.DeepEqual(v1, v2) {
		t.Error("TE decisions are not deterministic")
	}
	if !v1.TE {
		t.Fatal("TE not applied with TEProb=1")
	}
	// The LocPrf must be outside every base band.
	if v1.LocPrf == 350 || v1.LocPrf == 220 || v1.LocPrf == 90 {
		t.Errorf("TE LocPrf %d equals a base band value", v1.LocPrf)
	}
	// A TE community of the vantage must be present.
	foundTE := false
	for _, c := range v1.Communities {
		if c.ASN() == 40 && (c.Value() == 9100 || c.Value() == 9200) {
			foundTE = true
		}
	}
	if !foundTE {
		t.Errorf("TE community missing: %v", v1.Communities)
	}
}

func TestGeneratedInternetFullReachability(t *testing.T) {
	cfg := gen.SmallConfig()
	in, err := gen.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s4 := New(in, asrel.IPv4)
	// Sample a few origins across the ASN range: the v4 plane must be
	// fully connected under Gao–Rexford (tier-1 clique at the top).
	for _, origin := range []asrel.ASN{1, asrel.ASN(cfg.NumASes / 2), asrel.ASN(cfg.NumASes)} {
		res := mustPropagate(t, s4, origin)
		if res.ReachableCount() != s4.NumASes() {
			t.Errorf("v4 origin %s: %d/%d ASes have routes",
				origin, res.ReachableCount(), s4.NumASes())
		}
	}
	// The v6 plane with relaxer leaks must also be fully reachable.
	s6 := New(in, asrel.IPv6)
	nodes := in.Graph6.Nodes()
	for _, origin := range []asrel.ASN{nodes[0], nodes[len(nodes)/2], nodes[len(nodes)-1]} {
		res := mustPropagate(t, s6, origin)
		if res.ReachableCount() < s6.NumASes()*99/100 {
			t.Errorf("v6 origin %s: only %d/%d ASes have routes",
				origin, res.ReachableCount(), s6.NumASes())
		}
	}
}

func TestDisputePartitionWithoutLeaks(t *testing.T) {
	cfg := gen.SmallConfig()
	in, err := gen.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Strip every leak: the disputants must now be mutually unreachable.
	in.Leaks = nil
	s6 := New(in, asrel.IPv6)
	// Any prefix originated by DisputeB's exclusive customers (or B
	// itself) is invisible at A.
	res := mustPropagate(t, s6, in.DisputeB)
	if res.Has(in.DisputeA) {
		t.Error("disputant A reaches B without leaks")
	}
	res = mustPropagate(t, s6, in.DisputeA)
	if res.Has(in.DisputeB) {
		t.Error("disputant B reaches A without leaks")
	}
}

func TestViewsDeterminism(t *testing.T) {
	in, err := gen.Build(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := New(in, asrel.IPv6)
	origin := in.Graph6.Nodes()[0]
	a := s.Views(mustPropagate(t, s, origin))
	b := s.Views(mustPropagate(t, s, origin))
	if !reflect.DeepEqual(a, b) {
		t.Error("Views not deterministic across identical Propagate calls")
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Vantage >= a[i].Vantage {
			t.Fatal("views not in ascending vantage order")
		}
	}
}

func TestClassString(t *testing.T) {
	for _, c := range []Class{ClassNone, ClassProvider, ClassPeer, ClassCustomer} {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
}
