// Package bgpsim propagates routes over a generated Internet under the
// standard Gao–Rexford export policy, extended with the scoped route
// leaks the paper studies: relaxations that restore reachability across
// the partitioned IPv6 plane, and noise leaks that create ordinary
// valley paths.
//
// The model, per origin AS:
//
//   - every AS selects one best route by class (customer > peer >
//     provider), then shortest AS path, then lowest neighbor ASN;
//   - an AS exports its best route to customers always, and to peers and
//     providers only when the route is customer-learned or self-originated;
//   - a Leak rule (At, Via, To) additionally exports At's best route to
//     To whenever that route was learned from Via.
//
// Propagation runs an improve-only label-correcting loop, which
// terminates because a route can only improve finitely often; at the
// fixed point parent chains are shortest-path trees (stale leak parents
// are guarded by a loop check during path extraction).
//
// Traffic-engineering LocPrf overrides are recorded in the emitted
// attributes (with the matching TE community) but do not influence
// selection; DESIGN.md documents this approximation.
package bgpsim

import (
	"fmt"
	"sort"

	"hybridrel/internal/asrel"
	"hybridrel/internal/gen"
	"hybridrel/internal/topology"
)

// Class is the preference class of a learned route, ascending.
type Class uint8

// Route classes: customer-learned routes (and self-originated ones) are
// preferred over peer-learned over provider-learned.
const (
	ClassNone Class = iota
	ClassProvider
	ClassPeer
	ClassCustomer
)

// String names the class as used in debug output.
func (c Class) String() string {
	switch c {
	case ClassProvider:
		return "provider"
	case ClassPeer:
		return "peer"
	case ClassCustomer:
		return "customer"
	default:
		return "none"
	}
}

// Sim is a propagation engine for one address-family plane of a
// generated Internet. It is not safe for concurrent use; create one per
// goroutine (they share the immutable Internet).
type Sim struct {
	in *gen.Internet
	af asrel.AF

	asns []asrel.ASN
	idx  map[asrel.ASN]int32
	off  []int32
	nbr  []int32
	rel  []asrel.Rel // relationship of node u toward nbr entry (u's view)

	// leaks[(at<<32)|via] lists target node indexes.
	leaks map[uint64][]int32

	vantages []int32

	// scratch reused across Propagate calls.
	routes []route
	queue  []int32
	inQ    []bool
}

type route struct {
	class  Class
	dist   int32
	parent int32 // neighbor node index, -1 for the origin itself
}

// New builds a simulator for the given plane. Leak rules are applied
// only in the IPv6 plane, where the generator installs them.
func New(in *gen.Internet, af asrel.AF) *Sim {
	g := in.GraphFor(af)
	truth := in.TruthFor(af)
	asns := g.Nodes()
	s := &Sim{
		in:    in,
		af:    af,
		asns:  asns,
		idx:   make(map[asrel.ASN]int32, len(asns)),
		leaks: make(map[uint64][]int32),
	}
	for i, a := range asns {
		s.idx[a] = int32(i)
	}
	s.off = make([]int32, len(asns)+1)
	for i, a := range asns {
		s.off[i+1] = s.off[i] + int32(len(g.Neighbors(a)))
	}
	s.nbr = make([]int32, s.off[len(asns)])
	s.rel = make([]asrel.Rel, s.off[len(asns)])
	for i, a := range asns {
		nbrs := append([]asrel.ASN(nil), g.Neighbors(a)...)
		sort.Slice(nbrs, func(x, y int) bool { return nbrs[x] < nbrs[y] })
		p := s.off[i]
		for j, n := range nbrs {
			s.nbr[p+int32(j)] = s.idx[n]
			s.rel[p+int32(j)] = truth.Get(a, n)
		}
	}
	if af == asrel.IPv6 {
		for _, l := range in.Leaks {
			at, okAt := s.idx[l.At]
			via, okVia := s.idx[l.Via]
			to, okTo := s.idx[l.To]
			if okAt && okVia && okTo {
				k := leakKey(at, via)
				s.leaks[k] = append(s.leaks[k], to)
			}
		}
	}
	for _, v := range in.Vantages {
		if i, ok := s.idx[v]; ok {
			s.vantages = append(s.vantages, i)
		}
	}
	s.routes = make([]route, len(asns))
	s.inQ = make([]bool, len(asns))
	return s
}

func leakKey(at, via int32) uint64 { return uint64(uint32(at))<<32 | uint64(uint32(via)) }

// NumASes returns the number of ASes present in this plane.
func (s *Sim) NumASes() int { return len(s.asns) }

// Result is the outcome of one Propagate call. It aliases the Sim's
// scratch buffers: it is invalidated by the next Propagate on the same
// Sim.
type Result struct {
	s      *Sim
	origin int32
}

// Propagate computes every AS's best route toward origin. It returns an
// error only when the origin is not part of this plane.
func (s *Sim) Propagate(origin asrel.ASN) (*Result, error) {
	o, ok := s.idx[origin]
	if !ok {
		return nil, fmt.Errorf("bgpsim: origin %s not in the %s plane", origin, s.af)
	}
	for i := range s.routes {
		s.routes[i] = route{class: ClassNone, dist: -1, parent: -1}
	}
	s.queue = s.queue[:0]
	s.routes[o] = route{class: ClassCustomer, dist: 0, parent: -1}
	s.push(o)
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		s.inQ[u] = false
		s.relax(u)
	}
	return &Result{s: s, origin: o}, nil
}

func (s *Sim) push(u int32) {
	if !s.inQ[u] {
		s.inQ[u] = true
		s.queue = append(s.queue, u)
	}
}

// relax exports u's current best route along every edge its policy
// allows, improving neighbors' routes.
func (s *Sim) relax(u int32) {
	ru := s.routes[u]
	if ru.class == ClassNone {
		return
	}
	for p := s.off[u]; p < s.off[u+1]; p++ {
		v := s.nbr[p]
		rel := s.rel[p]
		if !s.exportAllowed(ru.class, rel) {
			continue
		}
		s.offer(u, v, recvClass(rel))
	}
	// Scoped leaks: if u's best route came via a leak source, export it
	// to the leak targets regardless of class.
	if ru.parent >= 0 {
		if targets, ok := s.leaks[leakKey(u, ru.parent)]; ok {
			for _, v := range targets {
				s.offer(u, v, s.classAt(v, u))
			}
		}
	}
}

// exportAllowed implements Gao–Rexford: everything goes to customers;
// only customer-learned (or self-originated) routes go to peers and
// providers. Sibling edges exchange everything.
func (s *Sim) exportAllowed(c Class, relToNbr asrel.Rel) bool {
	switch relToNbr {
	case asrel.P2C, asrel.S2S:
		return true
	case asrel.P2P, asrel.C2P:
		return c == ClassCustomer
	default:
		return false
	}
}

// recvClass converts the exporter's edge relationship into the
// receiver's route class: if u sees v as its provider (C2P), then v
// learned the route from its customer u.
func recvClass(relUtoV asrel.Rel) Class {
	switch relUtoV {
	case asrel.C2P:
		return ClassCustomer
	case asrel.P2P:
		return ClassPeer
	case asrel.P2C:
		return ClassProvider
	case asrel.S2S:
		return ClassCustomer
	default:
		return ClassNone
	}
}

// classAt returns the class v assigns to routes learned from u, looking
// up the edge from v's side (used for leak targets).
func (s *Sim) classAt(v, u int32) Class {
	for p := s.off[v]; p < s.off[v+1]; p++ {
		if s.nbr[p] == u {
			switch s.rel[p] {
			case asrel.P2C: // u is v's customer
				return ClassCustomer
			case asrel.P2P:
				return ClassPeer
			case asrel.C2P:
				return ClassProvider
			case asrel.S2S:
				return ClassCustomer
			}
		}
	}
	return ClassNone
}

// offer proposes u's route (+1 hop) to v with the given receive class.
func (s *Sim) offer(u, v int32, c Class) {
	if c == ClassNone {
		return
	}
	cand := route{class: c, dist: s.routes[u].dist + 1, parent: u}
	if s.better(cand, s.routes[v], v) {
		s.routes[v] = cand
		s.push(v)
	}
}

// better implements best-route selection: class, then path length, then
// lowest neighbor ASN.
func (s *Sim) better(a, b route, _ int32) bool {
	if b.class == ClassNone {
		return true
	}
	if a.class != b.class {
		return a.class > b.class
	}
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	if a.parent != b.parent && a.parent >= 0 && b.parent >= 0 {
		return s.asns[a.parent] < s.asns[b.parent]
	}
	return false
}

// Has reports whether asn selected any route to the origin.
func (r *Result) Has(asn asrel.ASN) bool {
	i, ok := r.s.idx[asn]
	return ok && r.s.routes[i].class != ClassNone
}

// ClassOf returns the class of asn's best route (ClassNone if it has no
// route).
func (r *Result) ClassOf(asn asrel.ASN) Class {
	i, ok := r.s.idx[asn]
	if !ok {
		return ClassNone
	}
	return r.s.routes[i].class
}

// PathTo returns the selected AS path from asn to the origin, asn first.
// It returns nil when asn has no route or the parent chain is degenerate
// (a stale leak loop).
func (r *Result) PathTo(asn asrel.ASN) []asrel.ASN {
	i, ok := r.s.idx[asn]
	if !ok || r.s.routes[i].class == ClassNone {
		return nil
	}
	var path []asrel.ASN
	seen := make(map[int32]bool)
	for cur := i; ; {
		if seen[cur] {
			return nil // loop through stale leak parents
		}
		seen[cur] = true
		path = append(path, r.s.asns[cur])
		p := r.s.routes[cur].parent
		if p < 0 {
			return path
		}
		cur = p
	}
}

// ReachableCount returns how many ASes (including the origin) selected a
// route.
func (r *Result) ReachableCount() int {
	n := 0
	for i := range r.s.routes {
		if r.s.routes[i].class != ClassNone {
			n++
		}
	}
	return n
}

// Tier reports the generated tier of an AS, for reporting convenience.
func (s *Sim) Tier(asn asrel.ASN) topology.Tier { return s.in.AS(asn).Tier }
