package bgpsim

import (
	"hash/fnv"

	"hybridrel/internal/asrel"
	"hybridrel/internal/bgp"
)

// VantageView is what one collector peer announces for one origin: the
// selected AS path (vantage first, origin last) and the attributes the
// collector records — the accumulated Communities and, for iBGP-style
// feeds, the vantage's LOCAL_PREF.
type VantageView struct {
	Vantage     asrel.ASN
	Path        []asrel.ASN
	Communities []bgp.Community
	LocPrf      uint32
	HasLocPrf   bool
	// TE marks a route whose LocPrf was overridden for traffic
	// engineering (the matching TE community is in Communities).
	TE bool
}

// Views extracts every vantage's announced route from a propagation
// result, in ascending vantage ASN order. Vantages without a route (or
// with a degenerate stale-leak path) are omitted.
func (s *Sim) Views(res *Result) []VantageView {
	out := make([]VantageView, 0, len(s.vantages))
	for _, vi := range s.vantages {
		v := s.asns[vi]
		path := res.PathTo(v)
		if path == nil {
			continue
		}
		out = append(out, s.buildView(v, path))
	}
	return out
}

// buildView synthesizes the attributes of one vantage route by walking
// the path from the origin toward the vantage, applying each hop's
// community policy: scrubbers clear the accumulated list on ingress,
// taggers append their relationship community for the edge the route
// arrived on.
func (s *Sim) buildView(vantage asrel.ASN, path []asrel.ASN) VantageView {
	view := VantageView{Vantage: vantage, Path: path}
	truth := s.in.TruthFor(s.af)
	origin := path[len(path)-1]

	var comms []bgp.Community
	// Origin-side traffic engineering: the origin sometimes attaches its
	// provider's TE (action) community when announcing.
	if len(path) >= 2 {
		upstream := path[len(path)-2]
		up := s.in.AS(upstream)
		if len(up.Policy.TETags) > 0 && s.chance(origin, upstream, 0x7e) {
			comms = append(comms, bgp.MakeCommunity(uint16(upstream), up.Policy.TETags[0]))
		}
	}
	for i := len(path) - 2; i >= 0; i-- {
		w := path[i]
		pol := &s.in.AS(w).Policy
		if pol.Strips {
			comms = comms[:0]
		}
		if tag, ok := pol.TagFor(truth.Get(w, path[i+1])); ok {
			comms = append(comms, bgp.MakeCommunity(uint16(w), tag))
		}
	}

	vp := &s.in.AS(vantage).Policy
	if len(path) == 1 {
		// The vantage's own prefix: default preference, no communities.
		view.LocPrf, view.HasLocPrf = 100, s.in.VantageLocPrf[vantage]
		view.Communities = comms
		return view
	}
	view.LocPrf = vp.LocPrfFor(truth.Get(vantage, path[1]))
	view.HasLocPrf = s.in.VantageLocPrf[vantage]
	// Vantage-side traffic engineering: LocPrf override plus TE tag.
	if len(vp.TETags) > 0 && s.chance(vantage, origin, 0x11) {
		view.TE = true
		te := vp.TETags[int(hash3(uint32(vantage), uint32(origin), 0x22))%len(vp.TETags)]
		comms = append(comms, bgp.MakeCommunity(uint16(vantage), te))
		if hash3(uint32(vantage), uint32(origin), 0x33)&1 == 0 {
			// Backup path: depressed below the provider band.
			if vp.LocProvider > 25 {
				view.LocPrf = vp.LocProvider - 25
			} else {
				view.LocPrf = 1
			}
		} else {
			// Pinned preferred path: raised above the customer band.
			view.LocPrf = vp.LocCustomer + 40
		}
	}
	view.Communities = comms
	return view
}

// chance returns a deterministic pseudo-random event with probability
// Cfg.TEProb, keyed by the pair of ASNs and a salt so distinct decision
// points decorrelate.
func (s *Sim) chance(a, b asrel.ASN, salt uint32) bool {
	p := s.in.Cfg.TEProb
	if p <= 0 {
		return false
	}
	h := hash3(uint32(a), uint32(b), salt^uint32(s.in.Cfg.Seed))
	return float64(h%10000) < p*10000
}

func hash3(a, b, c uint32) uint32 {
	h := fnv.New32a()
	var buf [12]byte
	buf[0], buf[1], buf[2], buf[3] = byte(a>>24), byte(a>>16), byte(a>>8), byte(a)
	buf[4], buf[5], buf[6], buf[7] = byte(b>>24), byte(b>>16), byte(b>>8), byte(b)
	buf[8], buf[9], buf[10], buf[11] = byte(c>>24), byte(c>>16), byte(c>>8), byte(c)
	h.Write(buf[:])
	return h.Sum32()
}
