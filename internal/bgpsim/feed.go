// Feed generation: turns a simulated Internet into a seeded, replayable
// stream of BGP UPDATE messages — the RIS-Live-style input of the live
// ingest subsystem. The feed is built from the same propagation and
// attribute model the MRT collectors serialize, so a feed that
// converges (every route re-announced) is observation-for-observation
// identical to the batch archives, and live-vs-batch snapshot
// equivalence can be asserted byte-for-byte.
package bgpsim

import (
	"fmt"
	"math/rand"
	"net/netip"

	"hybridrel/internal/asrel"
	"hybridrel/internal/bgp"
	"hybridrel/internal/gen"
)

// FeedConfig shapes the replayable update stream.
type FeedConfig struct {
	// Seed drives the event schedule (announce order, churn picks,
	// re-announce gaps). The same seed over the same Internet yields
	// the same byte stream.
	Seed int64
	// ChurnEvents is the number of withdraw→re-announce flaps emitted
	// after the initial announcement phase.
	ChurnEvents int
	// ChurnGapMax bounds how many events a withdrawn route stays down
	// before its re-announcement (default 8). Small gaps keep the
	// number of concurrently-withdrawn routes low.
	ChurnGapMax int
	// Residual routes are withdrawn at the very end and never
	// re-announced, leaving the feed converged onto a partial table.
	Residual int
	// Bias lists links whose crossing routes are preferred (with
	// probability ½ per pick) as churn victims — e.g. planted hybrid
	// links, so transition-tech flaps concentrate where the paper's
	// signal lives.
	Bias []asrel.LinkKey
}

// FeedEvent is one BGP UPDATE as seen by a vantage point.
type FeedEvent struct {
	AF       asrel.AF
	Vantage  asrel.ASN
	Origin   asrel.ASN
	Withdraw bool
	// Data is the complete wire message (header included), decodable
	// with bgp.ParseUpdate under Options{ASN4: true}.
	Data []byte
}

// feedRoute is one (plane, vantage, origin) route: the unit of
// announcement and withdrawal. An UPDATE carries all of the origin's
// prefixes for that plane at once.
type feedRoute struct {
	af       asrel.AF
	vantage  asrel.ASN
	origin   asrel.ASN
	announce []byte
	withdraw []byte
	active   bool
	biased   bool
}

// Feed is a fully-materialized update stream.
type Feed struct {
	Events []FeedEvent
	routes []feedRoute
}

// GenerateFeed propagates both planes of the Internet and builds the
// seeded event stream: an announcement phase covering every route in
// shuffled order, a churn phase of withdraw→re-announce flaps, and an
// optional residual phase of final withdrawals.
func GenerateFeed(in *gen.Internet, cfg FeedConfig) (*Feed, error) {
	if cfg.ChurnGapMax < 1 {
		cfg.ChurnGapMax = 8
	}
	bias := make(map[asrel.LinkKey]struct{}, len(cfg.Bias))
	for _, k := range cfg.Bias {
		bias[k] = struct{}{}
	}
	f := &Feed{}
	for _, af := range []asrel.AF{asrel.IPv4, asrel.IPv6} {
		sim := New(in, af)
		for _, origin := range in.Order {
			prefixes := in.ASes[origin].PrefixesFor(af)
			if len(prefixes) == 0 {
				continue
			}
			res, err := sim.Propagate(origin)
			if err != nil {
				return nil, err
			}
			for _, v := range sim.Views(res) {
				rt, err := buildRoute(af, origin, prefixes, v, bias)
				if err != nil {
					return nil, err
				}
				f.routes = append(f.routes, rt)
			}
		}
	}
	f.schedule(cfg)
	return f, nil
}

// buildRoute marshals the announce and withdraw UPDATEs for one view.
func buildRoute(af asrel.AF, origin asrel.ASN, prefixes []netip.Prefix, v VantageView, bias map[asrel.LinkKey]struct{}) (feedRoute, error) {
	opt := bgp.Options{ASN4: true}
	ann := &bgp.Update{}
	ann.Attrs.HasOrigin = true
	ann.Attrs.Origin = bgp.OriginIGP
	ann.Attrs.ASPath = bgp.Sequence(v.Path...)
	if len(v.Communities) > 0 {
		ann.Attrs.Communities = v.Communities
	}
	if v.HasLocPrf {
		ann.Attrs.HasLocalPref = true
		ann.Attrs.LocalPref = v.LocPrf
	}
	wd := &bgp.Update{}
	if af == asrel.IPv6 {
		ann.Attrs.MPReach = &bgp.MPReach{
			AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast,
			NextHop: []netip.Addr{vantageAddr6(v.Vantage)},
			NLRI:    prefixes,
		}
		wd.Attrs.MPUnreach = &bgp.MPUnreach{
			AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast, Withdrawn: prefixes,
		}
	} else {
		ann.Attrs.NextHop = vantageAddr4(v.Vantage)
		ann.NLRI = prefixes
		wd.Withdrawn = prefixes
	}
	annB, err := ann.Marshal(opt)
	if err != nil {
		return feedRoute{}, fmt.Errorf("bgpsim: feed announce %s %d→%d: %w", af, v.Vantage, origin, err)
	}
	wdB, err := wd.Marshal(opt)
	if err != nil {
		return feedRoute{}, fmt.Errorf("bgpsim: feed withdraw %s %d→%d: %w", af, v.Vantage, origin, err)
	}
	biased := false
	for i := 0; i+1 < len(v.Path); i++ {
		if _, ok := bias[asrel.Key(v.Path[i], v.Path[i+1])]; ok {
			biased = true
			break
		}
	}
	return feedRoute{
		af: af, vantage: v.Vantage, origin: origin,
		announce: annB, withdraw: wdB, biased: biased,
	}, nil
}

// vantageAddr4 / vantageAddr6 synthesize session next-hop addresses.
// The applier discards next hops, so only well-formedness matters.
func vantageAddr4(v asrel.ASN) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 200, byte(v >> 8), byte(v)})
}

func vantageAddr6(v asrel.ASN) netip.Addr {
	var raw [16]byte
	raw[0] = 0xfd
	raw[1] = 0x01
	raw[14], raw[15] = byte(v>>8), byte(v)
	return netip.AddrFrom16(raw)
}

// schedule lays out the event stream from the route table.
func (f *Feed) schedule(cfg FeedConfig) {
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Announcement phase: every route once, in shuffled order.
	order := rng.Perm(len(f.routes))
	for _, ri := range order {
		f.emit(ri, false)
	}

	var biased []int
	for ri := range f.routes {
		if f.routes[ri].biased {
			biased = append(biased, ri)
		}
	}

	// Churn phase: withdraw an active route, re-announce it within
	// ChurnGapMax subsequent steps. pending holds routes that are
	// down, keyed by the step at which they come back.
	type flap struct{ due, route int }
	var pending []flap
	step := 0
	flush := func(now int) {
		kept := pending[:0]
		for _, p := range pending {
			if p.due <= now {
				f.emit(p.route, false)
			} else {
				kept = append(kept, p)
			}
		}
		pending = kept
	}
	for n := 0; n < cfg.ChurnEvents; n++ {
		flush(step)
		ri := f.pickActive(rng, biased)
		if ri < 0 {
			break
		}
		f.emit(ri, true)
		pending = append(pending, flap{due: step + 1 + rng.Intn(cfg.ChurnGapMax), route: ri})
		step++
	}
	flush(step + cfg.ChurnGapMax) // everything comes back

	// Residual phase: final withdrawals with no re-announcement.
	for n := 0; n < cfg.Residual; n++ {
		ri := f.pickActive(rng, biased)
		if ri < 0 {
			break
		}
		f.emit(ri, true)
	}
}

// pickActive returns a random active route index, preferring biased
// routes half the time when any are active; -1 when none are active.
func (f *Feed) pickActive(rng *rand.Rand, biased []int) int {
	if len(f.routes) == 0 {
		return -1
	}
	for attempt := 0; attempt < 4*len(f.routes); attempt++ {
		var ri int
		if len(biased) > 0 && rng.Intn(2) == 0 {
			ri = biased[rng.Intn(len(biased))]
		} else {
			ri = rng.Intn(len(f.routes))
		}
		if f.routes[ri].active {
			return ri
		}
	}
	// Degenerate config (almost everything withdrawn): linear scan.
	for ri := range f.routes {
		if f.routes[ri].active {
			return ri
		}
	}
	return -1
}

func (f *Feed) emit(ri int, withdraw bool) {
	rt := &f.routes[ri]
	data := rt.announce
	if withdraw {
		data = rt.withdraw
	}
	rt.active = !withdraw
	f.Events = append(f.Events, FeedEvent{
		AF: rt.af, Vantage: rt.vantage, Origin: rt.origin,
		Withdraw: withdraw, Data: data,
	})
}

// NumRoutes returns the number of distinct (plane, vantage, origin)
// routes in the feed.
func (f *Feed) NumRoutes() int { return len(f.routes) }

// Announce / Withdraw return synthetic events for route i, for callers
// (benchmarks, tests) that drive their own schedules on top of the
// feed's route table.
func (f *Feed) Announce(i int) FeedEvent {
	rt := &f.routes[i]
	return FeedEvent{AF: rt.af, Vantage: rt.vantage, Origin: rt.origin, Data: rt.announce}
}

func (f *Feed) Withdraw(i int) FeedEvent {
	rt := &f.routes[i]
	return FeedEvent{AF: rt.af, Vantage: rt.vantage, Origin: rt.origin, Withdraw: true, Data: rt.withdraw}
}

// Keep returns a DumpFiltered-compatible filter matching the feed's
// final active state for one plane: the batch archives it selects
// describe exactly the routes a live consumer of this feed holds after
// the last event.
func (f *Feed) Keep(af asrel.AF) func(origin, vantage asrel.ASN) bool {
	type rk struct{ v, o asrel.ASN }
	act := make(map[rk]bool)
	for _, rt := range f.routes {
		if rt.af == af && rt.active {
			act[rk{rt.vantage, rt.origin}] = true
		}
	}
	return func(origin, vantage asrel.ASN) bool { return act[rk{vantage, origin}] }
}

// Converged reports whether every route is active (no residual
// withdrawals), i.e. the live end state equals the full batch archives.
func (f *Feed) Converged() bool {
	for _, rt := range f.routes {
		if !rt.active {
			return false
		}
	}
	return true
}
