// Package obs is the dependency-free observability core: atomic
// counters and gauges, fixed-bucket latency histograms with power-of-
// two nanosecond buckets and a lock-free Observe, a registry grouping
// them into metric families, and a Prometheus text-exposition HTTP
// handler.
//
// The package is deliberately tiny and self-contained — no client
// libraries, no reflection, no background goroutines — because the
// instruments sit on the serving hot path: Observe and Inc are a
// handful of atomic adds, and everything allocation-heavy (label
// rendering, family sorting) happens once at registration or at scrape
// time, never per request.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down. The zero value is
// ready to use; all methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (atomically, via CAS).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// HistogramBuckets is the number of finite histogram buckets. Bucket i
// has the inclusive upper bound 2^i−1 nanoseconds (so bucket 0 holds
// only zero observations, bucket 1 holds 1 ns, bucket 11 holds up to
// ~1 µs, bucket 31 up to ~2.1 s); everything past the last finite
// bound lands in the implicit +Inf bucket.
const HistogramBuckets = 36

// Histogram is a fixed-bucket latency histogram over power-of-two
// nanosecond boundaries. Observe is lock-free: one bits.Len64 plus two
// atomic adds (bucket and sum), no allocation, no branches over a
// bucket search. The zero value is ready to use.
type Histogram struct {
	buckets [HistogramBuckets]atomic.Uint64
	inf     atomic.Uint64 // observations past the last finite bound
	count   atomic.Uint64
	sum     atomic.Uint64 // total observed nanoseconds
}

// bucketOf maps an observation to the smallest bucket whose upper
// bound 2^i−1 contains it: the bit length of the value.
func bucketOf(ns uint64) int { return bits.Len64(ns) }

// Observe records one latency. Negative durations clamp to zero.
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if i := bucketOf(v); i < HistogramBuckets {
		h.buckets[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed values, in nanoseconds.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// snapshot reads a consistent-enough view for exposition: cumulative
// bucket counts (le = 2^i−1), the +Inf total, and the sum. Scrapes
// racing Observe may see a bucket increment before the count — the
// usual Prometheus tolerance for lock-free histograms.
func (h *Histogram) snapshot() (cum [HistogramBuckets]uint64, total, sum uint64) {
	var running uint64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		cum[i] = running
	}
	total = running + h.inf.Load()
	sum = h.sum.Load()
	return cum, total, sum
}

// BucketBound returns the inclusive upper bound of finite bucket i in
// nanoseconds: 2^i − 1.
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}
