package obs

// Unit tests for the observability core: instrument arithmetic,
// histogram bucketing at the power-of-two boundaries, exposition
// rendering round-tripped through the strict parser, registration
// conflict panics, and a -race hammer over every lock-free instrument.

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(1.5)
	g.Add(2.25)
	g.Add(-0.75)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// bucketOf(v) = bits.Len64: bucket i holds [2^(i-1), 2^i - 1], so
	// the inclusive upper bound of bucket i is 2^i - 1 = BucketBound(i).
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 20, 21}, {-5, 0},
	}
	var h Histogram
	for _, tc := range cases {
		v := tc.v
		if v < 0 {
			v = 0
		}
		if got := bucketOf(uint64(v)); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
		h.Observe(tc.v)
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	// Every bucket's bound must contain the values routed to it.
	for i := 1; i < HistogramBuckets; i++ {
		lo, hi := BucketBound(i-1)+1, BucketBound(i)
		if bucketOf(lo) != i || bucketOf(hi) != i {
			t.Errorf("bucket %d: bounds [%d,%d] misrouted (%d, %d)",
				i, lo, hi, bucketOf(lo), bucketOf(hi))
		}
	}
}

func TestHistogramOverflowGoesToInf(t *testing.T) {
	var h Histogram
	huge := int64(1) << 40 // past the last finite bound (2^36 - 1 ns)
	h.Observe(huge)
	cum, total, sum := h.snapshot()
	if cum[HistogramBuckets-1] != 0 {
		t.Error("overflow observation landed in a finite bucket")
	}
	if total != 1 || sum != uint64(huge) {
		t.Errorf("total %d sum %d, want 1 and %d", total, sum, huge)
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_requests_total", "Requests.", Labels{"endpoint": "/v1/rel", "code": "2xx"})
	c.Add(7)
	c2 := reg.Counter("test_requests_total", "Requests.", Labels{"endpoint": "/v1/rel", "code": "5xx"})
	c2.Add(1)
	g := reg.Gauge("test_inflight", "In flight.", nil)
	g.Set(3)
	reg.GaugeFunc("test_age_seconds", "Age.", nil, func() float64 { return 12.5 })
	h := reg.Histogram("test_latency_ns", "Latency.", Labels{"endpoint": "/v1/rel"})
	h.Observe(5)       // bucket 3 (le 7)
	h.Observe(1000)    // bucket 10 (le 1023)
	h.Observe(1 << 50) // +Inf

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	exp, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, text)
	}

	for series, want := range map[string]float64{
		`test_requests_total{code="2xx",endpoint="/v1/rel"}`: 7,
		`test_requests_total{code="5xx",endpoint="/v1/rel"}`: 1,
		`test_inflight`:    3,
		`test_age_seconds`: 12.5,
		`test_latency_ns_count{endpoint="/v1/rel"}`:            3,
		`test_latency_ns_sum{endpoint="/v1/rel"}`:              5 + 1000 + float64(uint64(1)<<50),
		`test_latency_ns_bucket{endpoint="/v1/rel",le="7"}`:    1,
		`test_latency_ns_bucket{endpoint="/v1/rel",le="1023"}`: 2,
		`test_latency_ns_bucket{endpoint="/v1/rel",le="+Inf"}`: 3,
	} {
		got, ok := exp.Value(series)
		if !ok {
			t.Errorf("series %s missing from exposition", series)
			continue
		}
		if got != want {
			t.Errorf("series %s = %v, want %v", series, got, want)
		}
	}
	for fam, typ := range map[string]string{
		"test_requests_total": "counter",
		"test_inflight":       "gauge",
		"test_latency_ns":     "histogram",
	} {
		if exp.Types[fam] != typ {
			t.Errorf("family %s declared %q, want %q", fam, exp.Types[fam], typ)
		}
	}
	if got := exp.Sum("test_requests_total{"); got != 8 {
		t.Errorf("Sum over request counters = %v, want 8", got)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_ticks_total", "Ticks.", nil).Add(3)
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	exp, err := ParseExposition(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := exp.Value("test_ticks_total"); v != 3 {
		t.Errorf("ticks = %v, want 3", v)
	}
}

func TestRegistrationConflictsPanic(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("dup", "x.", nil)
	mustPanic("duplicate series", func() { reg.Counter("dup", "x.", nil) })
	mustPanic("type conflict", func() { reg.Gauge("dup", "x.", Labels{"a": "b"}) })
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"name_without_value",
		`metric{unterminated="x 1`,
		`metric{key=unquoted} 1`,
		"metric not-a-number",
		"1leading_digit 3",
		"dup 1\ndup 2",
	} {
		if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("parsed garbage %q", bad)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "x.", Labels{"path": `a"b\c`}).Inc()
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("escaped labels do not re-parse: %v\n%s", err, b.String())
	}
}

// TestConcurrentInstruments hammers every lock-free instrument from
// many goroutines while a scraper renders the page — meaningful under
// -race, and it pins the final counts.
func TestConcurrentInstruments(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("cc_total", "x.", nil)
	g := reg.Gauge("cg", "x.", nil)
	h := reg.Histogram("ch_ns", "x.", nil)

	const workers = 8
	const perWorker = 2000
	var wg, scraperWg sync.WaitGroup
	stop := make(chan struct{})
	scraperWg.Add(1)
	go func() { // scraper
		defer scraperWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := reg.WriteText(&b); err != nil {
				t.Error(err)
				return
			}
			if _, err := ParseExposition(strings.NewReader(b.String())); err != nil {
				t.Errorf("mid-load exposition invalid: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(seed + int64(i))
			}
		}(int64(w * 100))
	}
	wg.Wait()
	close(stop)
	scraperWg.Wait()

	if c.Value() != workers*perWorker {
		t.Errorf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}

func TestProcessMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterProcessMetrics(reg)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("go_goroutines"); !ok || v < 1 {
		t.Errorf("go_goroutines = %v (present %v)", v, ok)
	}
	if math.IsNaN(exp.Sum("go_heap_alloc_bytes")) {
		t.Error("heap gauge NaN")
	}
}
