package obs

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels is one series' constant label set. Labels are fixed at
// registration — per-request label churn is exactly the allocation
// pattern this package exists to avoid; register one series per
// (endpoint, class) pair instead.
type Labels map[string]string

// render formats a label set in sorted-key order, Prometheus style:
// `{k1="v1",k2="v2"}`, or "" for an empty set.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// renderWith renders the label set with one extra pair appended (used
// for histogram le labels).
func renderWith(rendered, key, value string) string {
	if rendered == "" {
		return "{" + key + `="` + value + `"}`
	}
	return rendered[:len(rendered)-1] + "," + key + `="` + value + `"}`
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// series is one registered time series within a family.
type series struct {
	labels string // rendered label set, "" when unlabeled

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds metric families and renders them as Prometheus text
// exposition. Registration is synchronized; reads of the instruments
// themselves are lock-free. The zero value is not usable — construct
// with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// register adds one series, creating its family on first use. A type
// conflict on the name or a duplicate label set panics: both are
// wiring bugs that would silently corrupt the exposition.
func (r *Registry) register(name, help, typ string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	for _, have := range f.series {
		if have.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", &series{labels: labels.render(), counter: c})
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", &series{labels: labels.render(), gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// fn must be safe to call from the scrape goroutine.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "gauge", &series{labels: labels.render(), gaugeFn: fn})
}

// Histogram registers and returns a power-of-two-ns latency histogram.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	h := &Histogram{}
	r.register(name, help, "histogram", &series{labels: labels.render(), hist: h})
	return h
}

// WriteText renders the registry as Prometheus text exposition
// (version 0.0.4): families in registration order, each with its HELP
// and TYPE lines, histograms expanded into cumulative _bucket series
// plus _sum and _count.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	for i, name := range r.order {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.gauge.Value()))
			case s.gaugeFn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.gaugeFn()))
			case s.hist != nil:
				cum, total, sum := s.hist.snapshot()
				for i, c := range cum {
					// Skip leading all-zero buckets to keep the page
					// readable; cumulative counts stay correct because
					// everything before the first emitted bucket is zero.
					if c == 0 && i < HistogramBuckets-1 {
						continue
					}
					le := strconv.FormatUint(BucketBound(i), 10)
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, renderWith(s.labels, "le", le), c)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, renderWith(s.labels, "le", "+Inf"), total)
				fmt.Fprintf(&b, "%s_sum%s %d\n", f.name, s.labels, sum)
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.labels, total)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns the /metrics endpoint: the registry rendered as text
// exposition on every GET.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// RegisterProcessMetrics adds the basic Go runtime gauges every
// long-lived process should export.
func RegisterProcessMetrics(r *Registry) {
	r.GaugeFunc("go_goroutines", "Number of live goroutines.", nil, func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.", nil, func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	})
	r.GaugeFunc("go_gc_cycles_total", "Completed GC cycles.", nil, func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.NumGC)
	})
}
