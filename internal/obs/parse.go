package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Exposition is a parsed text-exposition page: every sample keyed by
// its full series name (metric name plus rendered labels), and the
// declared type of every metric family.
type Exposition struct {
	// Samples maps `name{labels}` (labels in the order they appeared)
	// to the sample value.
	Samples map[string]float64
	// Types maps family name to the declared TYPE.
	Types map[string]string
}

// Value returns the sample for the exact series string, and whether it
// was present.
func (e *Exposition) Value(series string) (float64, bool) {
	v, ok := e.Samples[series]
	return v, ok
}

// Sum adds up every sample whose series name starts with prefix —
// handy for "total requests across all endpoints" assertions.
func (e *Exposition) Sum(prefix string) float64 {
	var total float64
	for name, v := range e.Samples {
		if strings.HasPrefix(name, prefix) {
			total += v
		}
	}
	return total
}

// ParseExposition parses a Prometheus text-exposition page strictly
// enough to catch malformed output: every non-comment line must be
// `name[{labels}] value`, label bodies must be balanced key="value"
// pairs, values must parse as floats, and duplicate series are an
// error. It exists so tests and the CI scrape step can assert "the
// exposition parses" without a Prometheus dependency.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{
		Samples: make(map[string]float64),
		Types:   make(map[string]string),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				exp.Types[fields[2]] = fields[3]
			}
			continue
		}
		series, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		if _, dup := exp.Samples[series]; dup {
			return nil, fmt.Errorf("obs: line %d: duplicate series %s", lineNo, series)
		}
		exp.Samples[series] = value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

// parseSample splits one sample line into its series name and value.
func parseSample(line string) (string, float64, error) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		close := strings.LastIndexByte(line, '}')
		if close < i {
			return "", 0, fmt.Errorf("unbalanced label braces in %q", line)
		}
		if !validName(line[:i]) {
			return "", 0, fmt.Errorf("bad metric name %q", line[:i])
		}
		if err := checkLabels(line[i+1 : close]); err != nil {
			return "", 0, fmt.Errorf("%w in %q", err, line)
		}
		rest := strings.TrimSpace(line[close+1:])
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return "", 0, fmt.Errorf("bad value %q", rest)
		}
		return line[:close+1], v, nil
	}
	sp := strings.IndexAny(line, " \t")
	if sp < 0 {
		return "", 0, fmt.Errorf("no value in %q", line)
	}
	name := line[:sp]
	if !validName(name) {
		return "", 0, fmt.Errorf("bad metric name %q", name)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(line[sp:]), 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value in %q", line)
	}
	return name, v, nil
}

// checkLabels validates a label body: comma-separated key="value"
// pairs with balanced quotes.
func checkLabels(body string) error {
	rest := body
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 || !validName(rest[:eq]) {
			return fmt.Errorf("bad label key")
		}
		rest = rest[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value")
		}
		// Find the closing unescaped quote.
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated label value")
		}
		rest = rest[i+1:]
		if rest == "" {
			return nil
		}
		if rest[0] != ',' {
			return fmt.Errorf("missing comma between labels")
		}
		rest = rest[1:]
	}
	return nil
}

func validName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}
