package collector

import (
	"testing"

	"hybridrel/internal/asrel"
)

func TestPeerAddrStable(t *testing.T) {
	a1 := peerAddr(asrel.IPv4, 1)
	a2 := peerAddr(asrel.IPv4, 1)
	if a1 != a2 {
		t.Error("peer address not stable")
	}
	if !a1.Is4() {
		t.Errorf("v4 peer address %v is not IPv4", a1)
	}
	v6 := peerAddr(asrel.IPv6, 300)
	if !v6.Is6() {
		t.Errorf("v6 peer address %v is not IPv6", v6)
	}
	// Distinct peers get distinct addresses in both planes.
	if peerAddr(asrel.IPv4, 1) == peerAddr(asrel.IPv4, 2) {
		t.Error("v4 peer addresses collide")
	}
	if peerAddr(asrel.IPv6, 1) == peerAddr(asrel.IPv6, 2) {
		t.Error("v6 peer addresses collide")
	}
	// ULA space: never collides with originated 2001:db8::/32 prefixes.
	raw := v6.As16()
	if raw[0] != 0xfd {
		t.Errorf("v6 peer address %v not in fd00::/8", v6)
	}
}
