// Package collector simulates the RouteViews / RIPE RIS collection
// infrastructure: vantage ASes peer with named collectors, and each
// collector serializes the routes its peers announce into a standard
// MRT TABLE_DUMP_V2 archive. The analysis pipeline consumes only those
// MRT bytes, exactly as it would consume a real archive.
package collector

import (
	"fmt"
	"io"
	"net/netip"
	"time"

	"hybridrel/internal/asrel"
	"hybridrel/internal/bgp"
	"hybridrel/internal/bgpsim"
	"hybridrel/internal/gen"
	"hybridrel/internal/mrt"
)

// Collector is one named collection point and the vantage ASes that
// peer with it.
type Collector struct {
	Name  string
	ID    netip.Addr
	Peers []asrel.ASN
}

// Assign splits the Internet's vantages across n collectors round-robin
// (vantages are sorted, so the split is deterministic). Real vantages
// often peer with several collectors; here each peers with exactly one,
// which loses no information because the dataset layer deduplicates
// paths anyway.
func Assign(in *gen.Internet, n int) []Collector {
	if n < 1 {
		n = 1
	}
	cols := make([]Collector, n)
	for i := range cols {
		cols[i].Name = fmt.Sprintf("collector%02d", i)
		cols[i].ID = mrt.CollectorAddr(i + 1)
	}
	for i, v := range in.Vantages {
		c := &cols[i%n]
		c.Peers = append(c.Peers, v)
	}
	return cols
}

// peerAddr synthesizes a stable peering address for the i-th peer of a
// collector: 172.16/12 for IPv4 feeds, fd00::/8 (ULA) for IPv6, so peer
// addresses never collide with originated prefixes.
func peerAddr(af asrel.AF, i int) netip.Addr {
	if af == asrel.IPv6 {
		var raw [16]byte
		raw[0] = 0xfd
		raw[14], raw[15] = byte(i>>8), byte(i)
		return netip.AddrFrom16(raw)
	}
	return netip.AddrFrom4([4]byte{172, 16, byte(i >> 8), byte(i)})
}

// DumpAll propagates every origin of the given plane once and writes one
// TABLE_DUMP_V2 archive per collector: ws[i] receives cols[i]'s archive.
// Propagation results are shared across collectors, so the whole plane
// costs one simulation pass.
func DumpAll(in *gen.Internet, af asrel.AF, cols []Collector, ws []io.Writer, ts time.Time) error {
	return DumpFiltered(in, af, cols, ws, ts, nil)
}

// DumpFiltered is DumpAll with a route filter: a RIB entry for
// (origin, vantage) is written only when keep(origin, vantage) is true
// (nil keeps everything). It serializes the exact residual state a live
// feed converges to when some routes stay withdrawn, so live-vs-batch
// equivalence can be checked on partial tables, not just full ones.
// Records whose entries are all filtered are skipped without consuming
// a sequence number, matching what a collector that never heard the
// route would have written.
func DumpFiltered(in *gen.Internet, af asrel.AF, cols []Collector, ws []io.Writer, ts time.Time, keep func(origin, vantage asrel.ASN) bool) error {
	if len(cols) != len(ws) {
		return fmt.Errorf("collector: %d collectors but %d writers", len(cols), len(ws))
	}
	writers := make([]*mrt.Writer, len(cols))
	peerIdx := make([]map[asrel.ASN]uint16, len(cols))
	for i, c := range cols {
		writers[i] = mrt.NewWriter(ws[i])
		pit := &mrt.PeerIndexTable{CollectorID: c.ID, ViewName: c.Name}
		peerIdx[i] = make(map[asrel.ASN]uint16, len(c.Peers))
		for j, p := range c.Peers {
			peerIdx[i][p] = uint16(j)
			pit.Peers = append(pit.Peers, mrt.Peer{
				BGPID: netip.AddrFrom4([4]byte{10, 255, byte(j >> 8), byte(j)}),
				Addr:  peerAddr(af, j+1),
				ASN:   p,
			})
		}
		if err := writers[i].WritePeerIndexTable(ts, pit); err != nil {
			return fmt.Errorf("collector %s: %w", c.Name, err)
		}
	}

	sim := bgpsim.New(in, af)
	seq := make([]uint32, len(cols))
	for _, origin := range in.Order {
		a := in.ASes[origin]
		prefixes := a.PrefixesFor(af)
		if len(prefixes) == 0 {
			continue
		}
		res, err := sim.Propagate(origin)
		if err != nil {
			return err
		}
		views := sim.Views(res)
		if keep != nil {
			kept := views[:0]
			for _, v := range views {
				if keep(origin, v.Vantage) {
					kept = append(kept, v)
				}
			}
			views = kept
		}
		if len(views) == 0 {
			continue
		}
		for ci := range cols {
			entries := ribEntries(views, peerIdx[ci], af, ts)
			if len(entries) == 0 {
				continue
			}
			for _, pfx := range prefixes {
				rib := &mrt.RIB{Seq: seq[ci], Prefix: pfx, Entries: entries}
				seq[ci]++
				if err := writers[ci].WriteRIB(ts, rib); err != nil {
					return fmt.Errorf("collector %s: prefix %v: %w", cols[ci].Name, pfx, err)
				}
			}
		}
	}
	return nil
}

// ribEntries converts the vantage views belonging to one collector into
// RIB entries.
func ribEntries(views []bgpsim.VantageView, peers map[asrel.ASN]uint16, af asrel.AF, ts time.Time) []mrt.RIBEntry {
	var entries []mrt.RIBEntry
	for _, v := range views {
		idx, ok := peers[v.Vantage]
		if !ok {
			continue
		}
		var e mrt.RIBEntry
		e.PeerIndex = idx
		e.OriginatedAt = ts
		e.Attrs.HasOrigin = true
		e.Attrs.Origin = bgp.OriginIGP
		e.Attrs.ASPath = bgp.Sequence(v.Path...)
		if af == asrel.IPv6 {
			e.Attrs.MPReach = &bgp.MPReach{
				AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast,
				NextHop: []netip.Addr{peerAddr(af, int(idx)+1)},
			}
		} else {
			e.Attrs.NextHop = peerAddr(af, int(idx)+1)
		}
		if len(v.Communities) > 0 {
			e.Attrs.Communities = append([]bgp.Community(nil), v.Communities...)
		}
		if v.HasLocPrf {
			e.Attrs.HasLocalPref = true
			e.Attrs.LocalPref = v.LocPrf
		}
		entries = append(entries, e)
	}
	return entries
}
