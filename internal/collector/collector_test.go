package collector

import (
	"bytes"
	"io"
	"testing"
	"time"

	"hybridrel/internal/asrel"
	"hybridrel/internal/dataset"
	"hybridrel/internal/gen"
)

var testTime = time.Date(2010, 8, 1, 0, 0, 0, 0, time.UTC)

func buildWorld(t *testing.T) *gen.Internet {
	t.Helper()
	in, err := gen.Build(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestAssign(t *testing.T) {
	in := buildWorld(t)
	cols := Assign(in, 3)
	if len(cols) != 3 {
		t.Fatalf("got %d collectors", len(cols))
	}
	total := 0
	seen := make(map[asrel.ASN]bool)
	for _, c := range cols {
		total += len(c.Peers)
		for _, p := range c.Peers {
			if seen[p] {
				t.Errorf("vantage %s assigned twice", p)
			}
			seen[p] = true
		}
		if c.Name == "" || !c.ID.Is4() {
			t.Error("collector identity incomplete")
		}
	}
	if total != len(in.Vantages) {
		t.Errorf("assigned %d vantages of %d", total, len(in.Vantages))
	}
	// n<1 clamps to one collector.
	if got := Assign(in, 0); len(got) != 1 {
		t.Error("Assign(0) did not clamp")
	}
}

func TestDumpAllMismatchedWriters(t *testing.T) {
	in := buildWorld(t)
	cols := Assign(in, 2)
	if err := DumpAll(in, asrel.IPv6, cols, []io.Writer{io.Discard}, testTime); err == nil {
		t.Error("mismatched writer count accepted")
	}
}

func TestEndToEndDumpAndIngest(t *testing.T) {
	in := buildWorld(t)
	cols := Assign(in, 2)

	dump := func(af asrel.AF) *dataset.Dataset {
		t.Helper()
		bufs := []io.Writer{&bytes.Buffer{}, &bytes.Buffer{}}
		if err := DumpAll(in, af, cols, bufs, testTime); err != nil {
			t.Fatal(err)
		}
		d := dataset.New(af)
		for _, b := range bufs {
			if err := d.AddMRT(bytes.NewReader(b.(*bytes.Buffer).Bytes())); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}
	d6 := dump(asrel.IPv6)
	d4 := dump(asrel.IPv4)

	if d6.NumUniquePaths() == 0 || d4.NumUniquePaths() == 0 {
		t.Fatalf("empty datasets: v6=%d v4=%d", d6.NumUniquePaths(), d4.NumUniquePaths())
	}
	// Every observed link must exist in the generated plane.
	for _, k := range d6.Links() {
		if !in.Graph6.HasLink(k.Lo, k.Hi) {
			t.Fatalf("observed v6 link %s not in ground truth", k)
		}
	}
	for _, k := range d4.Links() {
		if !in.Graph4.HasLink(k.Lo, k.Hi) {
			t.Fatalf("observed v4 link %s not in ground truth", k)
		}
	}
	// Observed vantages are exactly (a subset of) the configured ones.
	vset := make(map[asrel.ASN]bool)
	for _, v := range in.Vantages {
		vset[v] = true
	}
	for _, v := range d6.Vantages() {
		if !vset[v] {
			t.Fatalf("unexpected v6 vantage %s", v)
		}
	}
	// LocPrf feeds appear only on designated vantages.
	for _, p := range d6.Paths() {
		if p.HasLocPrf && !in.VantageLocPrf[p.Vantage] {
			t.Fatalf("LocPrf from non-iBGP vantage %s", p.Vantage)
		}
		if !p.HasLocPrf && in.VantageLocPrf[p.Vantage] {
			t.Fatalf("missing LocPrf from iBGP vantage %s", p.Vantage)
		}
	}
	// No drops expected from synthetic archives.
	if sets, loops := d6.Dropped(); sets != 0 || loops != 0 {
		t.Errorf("unexpected drops: sets=%d loops=%d", sets, loops)
	}
	// The dual-stack join must be nonempty and a subset of the ground
	// truth dual-stack links.
	duals := dataset.DualStack(d4, d6)
	if len(duals) == 0 {
		t.Fatal("no dual-stack links observed")
	}
	truthDuals := make(map[asrel.LinkKey]bool)
	for _, k := range in.DualStackLinks() {
		truthDuals[k] = true
	}
	for _, k := range duals {
		if !truthDuals[k] {
			t.Fatalf("observed dual link %s not dual in ground truth", k)
		}
	}
	// The v6 path counts should be near vantages × origins.
	if d6.NumUniquePaths() < len(in.Vantages)*10 {
		t.Errorf("suspiciously few v6 paths: %d", d6.NumUniquePaths())
	}
}

func TestDumpDeterminism(t *testing.T) {
	in := buildWorld(t)
	cols := Assign(in, 1)
	var a, b bytes.Buffer
	if err := DumpAll(in, asrel.IPv6, cols, []io.Writer{&a}, testTime); err != nil {
		t.Fatal(err)
	}
	if err := DumpAll(in, asrel.IPv6, cols, []io.Writer{&b}, testTime); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical dumps differ byte-wise")
	}
	if a.Len() == 0 {
		t.Error("empty archive")
	}
}
