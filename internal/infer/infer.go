// Package infer holds the pieces shared by every Type-of-Relationship
// inference algorithm in this repository: the vote accumulator used to
// aggregate per-path evidence into per-link relationships, and the
// scoring helper that grades an inferred table against ground truth.
package infer

import (
	"sort"

	"hybridrel/internal/asrel"
)

// Votes tallies directed relationship evidence for one link, normalized
// to the canonical Lo→Hi orientation.
type Votes struct {
	P2C int // Lo is provider of Hi
	C2P int // Lo is customer of Hi
	P2P int
	S2S int
}

// Total returns the number of votes received.
func (v *Votes) Total() int { return v.P2C + v.C2P + v.P2P + v.S2S }

// Transit returns the number of transit votes (either direction).
func (v *Votes) Transit() int { return v.P2C + v.C2P }

// Add registers one vote for the directed pair (a, b) having
// relationship r, where k is the canonical key of {a, b}.
func (v *Votes) Add(k asrel.LinkKey, a asrel.ASN, r asrel.Rel) {
	if a != k.Lo {
		r = r.Invert()
	}
	switch r {
	case asrel.P2C:
		v.P2C++
	case asrel.C2P:
		v.C2P++
	case asrel.P2P:
		v.P2P++
	case asrel.S2S:
		v.S2S++
	}
}

// Sub retracts one previously-registered vote for the directed pair
// (a, b) having relationship r — the inverse of Add, used by the live
// incremental engine when a path's evidence is withdrawn.
func (v *Votes) Sub(k asrel.LinkKey, a asrel.ASN, r asrel.Rel) {
	if a != k.Lo {
		r = r.Invert()
	}
	switch r {
	case asrel.P2C:
		v.P2C--
	case asrel.C2P:
		v.C2P--
	case asrel.P2P:
		v.P2P--
	case asrel.S2S:
		v.S2S--
	}
}

// Resolve collapses the votes into one relationship (Lo→Hi oriented)
// using the repository-wide rule: majority wins; a transit-vs-peer tie
// breaks toward transit (providers tag customer routes far more reliably
// than peers mis-tag); an unresolvable direction conflict yields Unknown.
func (v *Votes) Resolve() asrel.Rel {
	if v.Total() == 0 {
		return asrel.Unknown
	}
	if v.S2S > v.Transit() && v.S2S > v.P2P {
		return asrel.S2S
	}
	if v.P2P > v.Transit() {
		return asrel.P2P
	}
	// Transit interpretation (wins ties against p2p).
	switch {
	case v.P2C > v.C2P:
		return asrel.P2C
	case v.C2P > v.P2C:
		return asrel.C2P
	case v.P2P > 0:
		return asrel.P2P // direction tied; peer evidence breaks it
	default:
		return asrel.Unknown // pure directional conflict
	}
}

// VoteTable accumulates Votes per link and resolves them into a Table.
type VoteTable struct {
	votes map[asrel.LinkKey]*Votes
}

// NewVoteTable returns an empty accumulator.
func NewVoteTable() *VoteTable {
	return &VoteTable{votes: make(map[asrel.LinkKey]*Votes)}
}

// Add registers a vote that a (toward b) has relationship r.
func (t *VoteTable) Add(a, b asrel.ASN, r asrel.Rel) {
	k := asrel.Key(a, b)
	v := t.votes[k]
	if v == nil {
		v = &Votes{}
		t.votes[k] = v
	}
	v.Add(k, a, r)
}

// Sub retracts a vote previously registered with Add, dropping the
// link's record when its last vote goes. Retracting more votes than
// were added is a caller bug; the counts would go negative and
// Resolve's majorities would be meaningless.
func (t *VoteTable) Sub(a, b asrel.ASN, r asrel.Rel) {
	k := asrel.Key(a, b)
	v := t.votes[k]
	if v == nil {
		return
	}
	v.Sub(k, a, r)
	if v.Total() == 0 {
		delete(t.votes, k)
	}
}

// Get returns the vote record for a link, or nil.
func (t *VoteTable) Get(k asrel.LinkKey) *Votes { return t.votes[k] }

// Keys returns every voted link in canonical ascending order.
func (t *VoteTable) Keys() []asrel.LinkKey {
	out := make([]asrel.LinkKey, 0, len(t.votes))
	for k := range t.votes {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lo != out[j].Lo {
			return out[i].Lo < out[j].Lo
		}
		return out[i].Hi < out[j].Hi
	})
	return out
}

// Len returns the number of links with votes.
func (t *VoteTable) Len() int { return len(t.votes) }

// Resolve produces the final relationship table; links resolving to
// Unknown are omitted.
func (t *VoteTable) Resolve() *asrel.Table {
	out := asrel.NewTable()
	for k, v := range t.votes {
		if r := v.Resolve(); r.Known() {
			out.SetKey(k, r)
		}
	}
	return out
}

// ClassCount is one relationship class's confusion tally, in the
// canonical Lo→Hi orientation: TP links whose truth and inference both
// name the class, FP links the inference wrongly assigned to it, FN
// links of the class the inference missed (assigned elsewhere or left
// unclassified).
type ClassCount struct {
	TP int
	FP int
	FN int
}

// Truth returns the number of graded links whose ground truth is this
// class (the recall denominator).
func (c ClassCount) Truth() int { return c.TP + c.FN }

// Precision returns TP/(TP+FP), or 0 when the class was never inferred.
func (c ClassCount) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when the class has no truth links.
func (c ClassCount) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Score grades an inferred table against ground truth.
type Score struct {
	// Total is the number of links graded.
	Total int
	// Classified is how many of them the inference assigned any
	// relationship.
	Classified int
	// Correct is how many classified links match the truth exactly.
	Correct int
	// PeerAsTransit / TransitAsPeer count the two confusion directions
	// that matter for hybrid links.
	PeerAsTransit int
	TransitAsPeer int
	// ByClass holds per-relationship-class confusion counts (P2C, C2P,
	// P2P, S2S) in the canonical Lo→Hi orientation, so per-class
	// precision and recall are recoverable, not just the aggregate
	// accuracy. Nil when no links were graded.
	ByClass map[asrel.Rel]ClassCount
}

// Class returns the confusion tally for one relationship class (the
// zero ClassCount when the class never appeared).
func (s Score) Class(r asrel.Rel) ClassCount { return s.ByClass[r] }

// Precision returns the precision of one class: of the links inferred
// as r, the share whose truth is r.
func (s Score) Precision(r asrel.Rel) float64 { return s.ByClass[r].Precision() }

// Recall returns the recall of one class: of the links whose truth is
// r, the share inferred as r.
func (s Score) Recall(r asrel.Rel) float64 { return s.ByClass[r].Recall() }

// Coverage returns Classified/Total.
func (s Score) Coverage() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Classified) / float64(s.Total)
}

// Accuracy returns Correct/Classified.
func (s Score) Accuracy() float64 {
	if s.Classified == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Classified)
}

// ScoreTable grades inferred against truth over the given links.
func ScoreTable(inferred, truth *asrel.Table, links []asrel.LinkKey) Score {
	var s Score
	tally := func(r asrel.Rel, f func(*ClassCount)) {
		if s.ByClass == nil {
			s.ByClass = make(map[asrel.Rel]ClassCount, 4)
		}
		c := s.ByClass[r]
		f(&c)
		s.ByClass[r] = c
	}
	for _, k := range links {
		want := truth.GetKey(k)
		if !want.Known() {
			continue
		}
		s.Total++
		got := inferred.GetKey(k)
		if !got.Known() {
			tally(want, func(c *ClassCount) { c.FN++ })
			continue
		}
		s.Classified++
		if got == want {
			s.Correct++
			tally(want, func(c *ClassCount) { c.TP++ })
			continue
		}
		tally(want, func(c *ClassCount) { c.FN++ })
		tally(got, func(c *ClassCount) { c.FP++ })
		if want == asrel.P2P && got.Transit() {
			s.PeerAsTransit++
		}
		if want.Transit() && got == asrel.P2P {
			s.TransitAsPeer++
		}
	}
	return s
}
