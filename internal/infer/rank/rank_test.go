package rank

import (
	"testing"

	"hybridrel/internal/asrel"
	"hybridrel/internal/dataset"
	"hybridrel/internal/gen"
	"hybridrel/internal/infer"
	"hybridrel/internal/testutil"
)

func p(asns ...asrel.ASN) *dataset.PathObs {
	return &dataset.PathObs{Vantage: asns[0], Path: asns}
}

func TestTransitDegrees(t *testing.T) {
	paths := []*dataset.PathObs{
		p(1, 2, 3),
		p(4, 2, 5),
		p(1, 2, 3), // duplicate adds nothing
	}
	td := transitDegrees(paths)
	if td[2] != 4 {
		t.Errorf("td[2] = %d, want 4 (neighbors 1,3,4,5)", td[2])
	}
	if td[1] != 0 || td[3] != 0 {
		t.Error("edge ASes must have zero transit degree")
	}
}

func TestCliqueDetection(t *testing.T) {
	w, err := testutil.BuildWorld(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := Infer(w.D6.Paths(), DefaultConfig())
	if len(res.Clique) < 3 {
		t.Fatalf("clique = %v, too small", res.Clique)
	}
	// Structural guarantees: clique members are pairwise adjacent in the
	// observed graph and sit at the very top of the transit hierarchy —
	// in the IPv6 plane that is the free-transit hub and the carriers,
	// exactly as AS6939 topped the real 2010 v6 ranking.
	for i, a := range res.Clique {
		for _, b := range res.Clique[i+1:] {
			if !w.D6.HasLink(asrel.Key(a, b)) {
				t.Errorf("clique members %s and %s are not adjacent", a, b)
			}
		}
	}
	top := false
	for _, a := range res.Clique {
		if a == w.In.FreeTransitHub {
			top = true
		}
		for _, t1 := range w.In.Tier1 {
			if a == t1 {
				top = true
			}
		}
	}
	if !top {
		t.Errorf("clique %v contains neither the hub nor a tier-1", res.Clique)
	}
}

func TestCliqueLinksPeered(t *testing.T) {
	w, err := testutil.BuildWorld(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := Infer(w.D4.Paths(), DefaultConfig())
	for i, a := range res.Clique {
		for _, b := range res.Clique[i+1:] {
			if !w.D4.HasLink(asrel.Key(a, b)) {
				continue
			}
			if got := res.Table.Get(a, b); got != asrel.P2P {
				t.Errorf("clique link %s-%s = %s, want p2p", a, b, got)
			}
		}
	}
}

func TestDominantVotesResistPeering(t *testing.T) {
	// A real clique {5,6,7} sits above mid-tier ASes 1 and 2. Link 1-2
	// has similar transit degrees and is top-adjacent in its paths, but
	// every observation says 1 is the provider: dominance overrides the
	// similarity peering rule.
	var paths []*dataset.PathObs
	// Clique visibility: mutual adjacency plus high transit degree.
	clique := []asrel.ASN{5, 6, 7}
	for i, a := range clique {
		b := clique[(i+1)%3]
		paths = append(paths, p(40+asrel.ASN(i), a, b, 50+asrel.ASN(i)))
		for v := asrel.ASN(0); v < 12; v++ {
			paths = append(paths, p(200+asrel.ASN(i)*20+v, a, 300+asrel.ASN(i)*20+v))
		}
	}
	// The disputed link: unanimous provider votes.
	for v := asrel.ASN(10); v < 16; v++ {
		paths = append(paths, p(v, 1, 2, v+100))
	}
	paths = append(paths, p(30, 2, 31), p(32, 1, 33))
	res := Infer(paths, DefaultConfig())
	for _, c := range clique {
		found := false
		for _, m := range res.Clique {
			if m == c {
				found = true
			}
		}
		if !found {
			t.Fatalf("clique = %v, missing %s", res.Clique, c)
		}
	}
	if got := res.Table.Get(1, 2); got != asrel.P2C {
		t.Errorf("rel(1,2) = %s, want p2c despite degree similarity", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	res := Infer([]*dataset.PathObs{p(1, 2, 3)}, Config{})
	if res.Table.Len() == 0 {
		t.Error("zero config inferred nothing")
	}
}

func TestAccuracyBeatsGaoStyleOnV4(t *testing.T) {
	w, err := testutil.BuildWorld(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := Infer(w.D4.Paths(), DefaultConfig())
	s := infer.ScoreTable(res.Table, w.In.Truth4, w.D4.Links())
	if s.Coverage() < 0.95 {
		t.Errorf("rank coverage = %.3f", s.Coverage())
	}
	if s.Accuracy() < 0.70 {
		t.Errorf("rank accuracy = %.3f, suspiciously low", s.Accuracy())
	}
	t.Logf("rank v4: coverage %.1f%% accuracy %.1f%% (peer→transit %d, transit→peer %d)",
		100*s.Coverage(), 100*s.Accuracy(), s.PeerAsTransit, s.TransitAsPeer)
}
