// Package rank implements an AS-rank-flavoured Type-of-Relationship
// heuristic in the spirit of CAIDA's inference (Dimitropoulos et al.
// 2007 / Luckie et al. 2013, simplified): a transit-degree metric, a
// greedy clique at the top of the hierarchy, per-path annotation voting
// split at the highest-transit-degree AS, and a conservative peering
// rule for links between large transit networks.
//
// Like every valley-free single-plane heuristic, it cannot represent a
// link whose relationship differs between IPv4 and IPv6 — which is the
// measurement artifact the paper quantifies.
package rank

import (
	"sort"

	"hybridrel/internal/asrel"
	"hybridrel/internal/dataset"
	"hybridrel/internal/infer"
)

// Config tunes the heuristic.
type Config struct {
	// CliqueSize bounds the greedy tier-1 clique.
	CliqueSize int
	// DegreeRatio is the transit-degree similarity bound for the
	// peering rule.
	DegreeRatio float64
	// Dominance is the vote fraction above which a directional transit
	// annotation overrides the peering rule (with at least three votes).
	Dominance float64
}

// DefaultConfig mirrors commonly used parameters.
func DefaultConfig() Config {
	return Config{CliqueSize: 12, DegreeRatio: 12, Dominance: 0.98}
}

// Result is the inference outcome.
type Result struct {
	Table *asrel.Table
	// Clique lists the inferred top clique, ascending.
	Clique []asrel.ASN
	// Peerings counts links classified by the peering rule (clique
	// links included).
	Peerings int
}

// Infer runs the heuristic over the observed paths.
func Infer(paths []*dataset.PathObs, cfg Config) *Result {
	if cfg.CliqueSize <= 0 {
		cfg.CliqueSize = 12
	}
	if cfg.DegreeRatio <= 0 {
		cfg.DegreeRatio = 12
	}
	if cfg.Dominance <= 0 || cfg.Dominance > 1 {
		cfg.Dominance = 0.98
	}
	td := transitDegrees(paths)
	adj := adjacency(paths)
	clique := findClique(td, adj, cfg.CliqueSize)
	inClique := make(map[asrel.ASN]bool, len(clique))
	for _, a := range clique {
		inClique[a] = true
	}

	votes := infer.NewVoteTable()
	topAdj := make(map[asrel.LinkKey]bool)
	for _, p := range paths {
		if len(p.Path) < 2 {
			continue
		}
		j := topIndex(p.Path, td)
		for i := 0; i+1 < len(p.Path); i++ {
			if i < j {
				votes.Add(p.Path[i], p.Path[i+1], asrel.C2P)
			} else {
				votes.Add(p.Path[i], p.Path[i+1], asrel.P2C)
			}
			if i == j-1 || i == j {
				topAdj[asrel.Key(p.Path[i], p.Path[i+1])] = true
			}
		}
	}

	res := &Result{Table: asrel.NewTable(), Clique: clique}
	for _, k := range votes.Keys() {
		v := votes.Get(k)
		// Clique-internal links are peerings by construction.
		if inClique[k.Lo] && inClique[k.Hi] {
			res.Table.SetKey(k, asrel.P2P)
			res.Peerings++
			continue
		}
		// Large-large peering rule: similar transit degrees, seen at the
		// top of paths, and no overwhelming directional evidence.
		if topAdj[k] && similar(td[k.Lo], td[k.Hi], cfg.DegreeRatio) &&
			td[k.Lo] > 0 && td[k.Hi] > 0 && !dominant(v, cfg.Dominance) {
			res.Table.SetKey(k, asrel.P2P)
			res.Peerings++
			continue
		}
		switch {
		case v.P2C > v.C2P:
			res.Table.SetKey(k, asrel.P2C)
		case v.C2P > v.P2C:
			res.Table.SetKey(k, asrel.C2P)
		default:
			// Balanced: the higher transit degree is the provider.
			if td[k.Lo] >= td[k.Hi] {
				res.Table.SetKey(k, asrel.P2C)
			} else {
				res.Table.SetKey(k, asrel.C2P)
			}
		}
	}
	return res
}

// transitDegrees counts, per AS, the distinct neighbors it appears
// between on paths — ASes it visibly provides transit between.
func transitDegrees(paths []*dataset.PathObs) map[asrel.ASN]int {
	sets := make(map[asrel.ASN]map[asrel.ASN]struct{})
	for _, p := range paths {
		for i := 1; i+1 < len(p.Path); i++ {
			b := p.Path[i]
			if sets[b] == nil {
				sets[b] = make(map[asrel.ASN]struct{})
			}
			sets[b][p.Path[i-1]] = struct{}{}
			sets[b][p.Path[i+1]] = struct{}{}
		}
	}
	out := make(map[asrel.ASN]int, len(sets))
	for a, s := range sets {
		out[a] = len(s)
	}
	return out
}

func adjacency(paths []*dataset.PathObs) map[asrel.LinkKey]bool {
	adj := make(map[asrel.LinkKey]bool)
	for _, p := range paths {
		for i := 0; i+1 < len(p.Path); i++ {
			adj[asrel.Key(p.Path[i], p.Path[i+1])] = true
		}
	}
	return adj
}

// findClique greedily grows a clique from the highest transit degrees.
func findClique(td map[asrel.ASN]int, adj map[asrel.LinkKey]bool, size int) []asrel.ASN {
	cands := make([]asrel.ASN, 0, len(td))
	for a := range td {
		cands = append(cands, a)
	}
	sort.Slice(cands, func(i, j int) bool {
		if td[cands[i]] != td[cands[j]] {
			return td[cands[i]] > td[cands[j]]
		}
		return cands[i] < cands[j]
	})
	var clique []asrel.ASN
	for _, c := range cands {
		if len(clique) >= size {
			break
		}
		ok := true
		for _, m := range clique {
			if !adj[asrel.Key(c, m)] {
				ok = false
				break
			}
		}
		if ok {
			clique = append(clique, c)
		}
	}
	sort.Slice(clique, func(i, j int) bool { return clique[i] < clique[j] })
	return clique
}

func topIndex(path []asrel.ASN, td map[asrel.ASN]int) int {
	best, bestTD := 0, -1
	for i, a := range path {
		if d := td[a]; d > bestTD {
			best, bestTD = i, d
		}
	}
	return best
}

func similar(a, b int, ratio float64) bool {
	if a <= 0 || b <= 0 {
		return false
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return float64(hi) <= ratio*float64(lo)
}

func dominant(v *infer.Votes, threshold float64) bool {
	total := v.P2C + v.C2P
	if total < 3 {
		return false
	}
	max := v.P2C
	if v.C2P > max {
		max = v.C2P
	}
	return float64(max) >= threshold*float64(total)
}
