// Package communities implements the paper's primary inference method:
// mining the BGP Communities attribute for relationship tags. A
// documented community T:v on a route's community list was attached by
// AS T when it imported the route; the documented meaning of v names the
// business relationship between T and the neighbor T learned the route
// from — the next AS toward the origin on the AS path.
package communities

import (
	"hybridrel/internal/asrel"
	"hybridrel/internal/community"
	"hybridrel/internal/dataset"
	"hybridrel/internal/infer"
)

// Result is the outcome of community mining.
type Result struct {
	// Table holds the resolved relationships.
	Table *asrel.Table
	// Votes exposes the per-link evidence for diagnostics.
	Votes *infer.VoteTable
	// TaggedPaths counts paths that contributed at least one usable tag.
	TaggedPaths int
	// OffPathTags counts tags whose tagger AS was not on the path
	// (ignored: the attribution is undefined).
	OffPathTags int
	// TERoutes counts paths carrying at least one TE community.
	TERoutes int
}

// Infer mines every path against the dictionary.
func Infer(paths []*dataset.PathObs, dict *community.Dictionary) *Result {
	res := &Result{Votes: infer.NewVoteTable()}
	for _, p := range paths {
		if len(p.Communities) == 0 || len(p.Path) < 2 {
			continue
		}
		// Index the path for tagger attribution.
		pos := make(map[asrel.ASN]int, len(p.Path))
		for i, a := range p.Path {
			pos[a] = i
		}
		contributed := false
		hasTE := false
		for _, c := range p.Communities {
			meaning, ok := dict.Lookup(c)
			if !ok {
				continue
			}
			if meaning == community.MeaningTE {
				hasTE = true
				continue
			}
			tagger := asrel.ASN(c.ASN())
			i, onPath := pos[tagger]
			if !onPath {
				res.OffPathTags++
				continue
			}
			if i == len(p.Path)-1 {
				// The origin imports nothing on this path; a
				// relationship tag from it is unattributable.
				res.OffPathTags++
				continue
			}
			rel, ok := meaning.Rel()
			if !ok {
				continue
			}
			res.Votes.Add(tagger, p.Path[i+1], rel)
			contributed = true
		}
		if contributed {
			res.TaggedPaths++
		}
		if hasTE {
			res.TERoutes++
		}
	}
	res.Table = res.Votes.Resolve()
	return res
}
