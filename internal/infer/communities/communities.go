// Package communities implements the paper's primary inference method:
// mining the BGP Communities attribute for relationship tags. A
// documented community T:v on a route's community list was attached by
// AS T when it imported the route; the documented meaning of v names the
// business relationship between T and the neighbor T learned the route
// from — the next AS toward the origin on the AS path.
package communities

import (
	"hybridrel/internal/asrel"
	"hybridrel/internal/community"
	"hybridrel/internal/dataset"
	"hybridrel/internal/infer"
)

// Result is the outcome of community mining.
type Result struct {
	// Table holds the resolved relationships.
	Table *asrel.Table
	// Votes exposes the per-link evidence for diagnostics.
	Votes *infer.VoteTable
	// TaggedPaths counts paths that contributed at least one usable tag.
	TaggedPaths int
	// OffPathTags counts tags whose tagger AS was not on the path
	// (ignored: the attribution is undefined).
	OffPathTags int
	// TERoutes counts paths carrying at least one TE community.
	TERoutes int
}

// Infer mines every path against the dictionary.
func Infer(paths []*dataset.PathObs, dict *community.Dictionary) *Result {
	res := &Result{Votes: infer.NewVoteTable()}
	for _, p := range paths {
		contributed, offPath, hasTE := PathVotes(p, dict, res.Votes.Add)
		res.OffPathTags += offPath
		if contributed {
			res.TaggedPaths++
		}
		if hasTE {
			res.TERoutes++
		}
	}
	res.Table = res.Votes.Resolve()
	return res
}

// PathVotes mines one path's communities, emitting one directed vote
// per usable tag: emit(tagger, neighbor, rel) asserts tagger's
// relationship toward the next AS on the path. It is the single
// deterministic source of per-path community evidence — batch Infer
// aggregates its emissions over all paths, and the live incremental
// engine replays them with opposite sign when a path is withdrawn, so
// the two cannot drift apart.
func PathVotes(p *dataset.PathObs, dict *community.Dictionary, emit func(tagger, neighbor asrel.ASN, rel asrel.Rel)) (contributed bool, offPath int, hasTE bool) {
	if len(p.Communities) == 0 || len(p.Path) < 2 {
		return false, 0, false
	}
	// Index the path for tagger attribution.
	pos := make(map[asrel.ASN]int, len(p.Path))
	for i, a := range p.Path {
		pos[a] = i
	}
	for _, c := range p.Communities {
		meaning, ok := dict.Lookup(c)
		if !ok {
			continue
		}
		if meaning == community.MeaningTE {
			hasTE = true
			continue
		}
		tagger := asrel.ASN(c.ASN())
		i, onPath := pos[tagger]
		if !onPath {
			offPath++
			continue
		}
		if i == len(p.Path)-1 {
			// The origin imports nothing on this path; a
			// relationship tag from it is unattributable.
			offPath++
			continue
		}
		rel, ok := meaning.Rel()
		if !ok {
			continue
		}
		emit(tagger, p.Path[i+1], rel)
		contributed = true
	}
	return contributed, offPath, hasTE
}
