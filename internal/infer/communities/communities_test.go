package communities

import (
	"testing"

	"hybridrel/internal/asrel"
	"hybridrel/internal/bgp"
	"hybridrel/internal/community"
	"hybridrel/internal/dataset"
	"hybridrel/internal/gen"
	"hybridrel/internal/infer"
	"hybridrel/internal/testutil"
)

func obs(path []asrel.ASN, comms ...bgp.Community) *dataset.PathObs {
	return &dataset.PathObs{Vantage: path[0], Path: path, Communities: comms}
}

func dict(t *testing.T, entries map[bgp.Community]community.Meaning) *community.Dictionary {
	t.Helper()
	d := community.NewDictionary()
	for c, m := range entries {
		d.Set(c, m)
	}
	return d
}

func TestInferAttribution(t *testing.T) {
	// Path 10 ← 20 ← 30 (10 is vantage, 30 origin). AS20 tags "from
	// customer" for the route it got from 30, AS10 tags "from peer" for
	// the route from 20.
	d := dict(t, map[bgp.Community]community.Meaning{
		bgp.MakeCommunity(20, 100): community.MeaningCustomer,
		bgp.MakeCommunity(10, 77):  community.MeaningPeer,
	})
	paths := []*dataset.PathObs{
		obs([]asrel.ASN{10, 20, 30}, bgp.MakeCommunity(20, 100), bgp.MakeCommunity(10, 77)),
	}
	res := Infer(paths, d)
	if res.Table.Get(20, 30) != asrel.P2C {
		t.Errorf("rel(20,30) = %s, want p2c", res.Table.Get(20, 30))
	}
	if res.Table.Get(10, 20) != asrel.P2P {
		t.Errorf("rel(10,20) = %s, want p2p", res.Table.Get(10, 20))
	}
	if res.TaggedPaths != 1 {
		t.Errorf("TaggedPaths = %d", res.TaggedPaths)
	}
}

func TestInferSkipsUnusableTags(t *testing.T) {
	d := dict(t, map[bgp.Community]community.Meaning{
		bgp.MakeCommunity(99, 1):  community.MeaningCustomer, // 99 not on path
		bgp.MakeCommunity(30, 2):  community.MeaningCustomer, // origin: unattributable
		bgp.MakeCommunity(20, 90): community.MeaningTE,       // TE, not a relationship
	})
	paths := []*dataset.PathObs{
		obs([]asrel.ASN{10, 20, 30},
			bgp.MakeCommunity(99, 1),
			bgp.MakeCommunity(30, 2),
			bgp.MakeCommunity(20, 90),
			bgp.MakeCommunity(20, 12345), // undocumented
		),
	}
	res := Infer(paths, d)
	if res.Table.Len() != 0 {
		t.Errorf("table = %d entries, want 0", res.Table.Len())
	}
	if res.OffPathTags != 2 {
		t.Errorf("OffPathTags = %d, want 2", res.OffPathTags)
	}
	if res.TERoutes != 1 {
		t.Errorf("TERoutes = %d", res.TERoutes)
	}
	if res.TaggedPaths != 0 {
		t.Errorf("TaggedPaths = %d", res.TaggedPaths)
	}
}

func TestInferVoteAggregation(t *testing.T) {
	// Conflicting evidence across paths for link 20-30: two customer
	// tags and one peer tag → transit wins.
	d := dict(t, map[bgp.Community]community.Meaning{
		bgp.MakeCommunity(20, 100): community.MeaningCustomer,
		bgp.MakeCommunity(20, 200): community.MeaningPeer,
	})
	paths := []*dataset.PathObs{
		obs([]asrel.ASN{11, 20, 30}, bgp.MakeCommunity(20, 100)),
		obs([]asrel.ASN{12, 20, 30}, bgp.MakeCommunity(20, 100)),
		obs([]asrel.ASN{13, 20, 30}, bgp.MakeCommunity(20, 200)),
	}
	res := Infer(paths, d)
	if got := res.Table.Get(20, 30); got != asrel.P2C {
		t.Errorf("rel(20,30) = %s, want p2c by majority", got)
	}
	v := res.Votes.Get(asrel.Key(20, 30))
	if v == nil || v.Total() != 3 {
		t.Errorf("votes = %+v", v)
	}
}

// TestInferAgainstGroundTruth is the package's core property: on the
// synthetic world, every relationship the miner asserts must match the
// ground truth of the corresponding plane (communities never lie in the
// model; coverage, not correctness, is the limiting factor).
func TestInferAgainstGroundTruth(t *testing.T) {
	w, err := testutil.BuildWorld(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		ds    func() []*dataset.PathObs
		truth *asrel.Table
		links []asrel.LinkKey
	}{
		{"v6", w.D6.Paths, w.In.Truth6, w.D6.Links()},
		{"v4", w.D4.Paths, w.In.Truth4, w.D4.Links()},
	} {
		res := Infer(tc.ds(), w.Dict)
		s := infer.ScoreTable(res.Table, tc.truth, tc.links)
		if s.Classified == 0 {
			t.Fatalf("%s: nothing classified", tc.name)
		}
		if s.Accuracy() < 0.999 {
			t.Errorf("%s: accuracy = %.4f (%d/%d); communities must not misinfer",
				tc.name, s.Accuracy(), s.Correct, s.Classified)
		}
		cov := s.Coverage()
		if cov < 0.40 || cov > 0.95 {
			t.Errorf("%s: coverage = %.3f, want realistic partial coverage", tc.name, cov)
		}
		t.Logf("%s: coverage %.1f%%, accuracy %.2f%%", tc.name, 100*cov, 100*s.Accuracy())
	}
}

func TestInferEmptyInputs(t *testing.T) {
	res := Infer(nil, community.NewDictionary())
	if res.Table.Len() != 0 || res.TaggedPaths != 0 {
		t.Error("empty inference produced output")
	}
}
