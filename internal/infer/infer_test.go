package infer

import (
	"testing"

	"hybridrel/internal/asrel"
)

func TestVotesOrientation(t *testing.T) {
	var v Votes
	k := asrel.Key(1, 2)
	v.Add(k, 1, asrel.P2C) // 1 provider of 2
	v.Add(k, 2, asrel.C2P) // 2 customer of 1 — same fact
	if v.P2C != 2 || v.C2P != 0 {
		t.Errorf("votes = %+v, want P2C=2", v)
	}
	v.Add(k, 2, asrel.P2P)
	if v.P2P != 1 || v.Total() != 3 || v.Transit() != 2 {
		t.Errorf("votes = %+v", v)
	}
}

func TestVotesResolve(t *testing.T) {
	cases := []struct {
		v    Votes
		want asrel.Rel
	}{
		{Votes{}, asrel.Unknown},
		{Votes{P2C: 3}, asrel.P2C},
		{Votes{C2P: 2}, asrel.C2P},
		{Votes{P2P: 5}, asrel.P2P},
		{Votes{S2S: 4, P2C: 1}, asrel.S2S},
		// Transit-vs-peer tie breaks toward transit.
		{Votes{P2C: 2, P2P: 2}, asrel.P2C},
		// Peer majority wins.
		{Votes{P2C: 1, P2P: 3}, asrel.P2P},
		// Directional transit conflict with peer evidence: peer.
		{Votes{P2C: 2, C2P: 2, P2P: 1}, asrel.P2P},
		// Pure directional conflict: unresolvable.
		{Votes{P2C: 2, C2P: 2}, asrel.Unknown},
	}
	for i, c := range cases {
		if got := c.v.Resolve(); got != c.want {
			t.Errorf("case %d: Resolve(%+v) = %s, want %s", i, c.v, got, c.want)
		}
	}
}

func TestVoteTable(t *testing.T) {
	vt := NewVoteTable()
	vt.Add(1, 2, asrel.P2C)
	vt.Add(2, 1, asrel.C2P)
	vt.Add(3, 4, asrel.P2P)
	vt.Add(5, 6, asrel.P2C)
	vt.Add(5, 6, asrel.C2P) // conflict → dropped in Resolve
	if vt.Len() != 3 {
		t.Fatalf("Len = %d", vt.Len())
	}
	keys := vt.Keys()
	if len(keys) != 3 || keys[0] != asrel.Key(1, 2) || keys[2] != asrel.Key(5, 6) {
		t.Errorf("Keys = %v", keys)
	}
	tbl := vt.Resolve()
	if tbl.Get(1, 2) != asrel.P2C || tbl.Get(3, 4) != asrel.P2P {
		t.Error("Resolve lost clean votes")
	}
	if tbl.Has(5, 6) {
		t.Error("conflicted link resolved")
	}
	if vt.Get(asrel.Key(1, 2)).P2C != 2 {
		t.Error("Get returned wrong votes")
	}
	if vt.Get(asrel.Key(9, 9)) != nil {
		t.Error("Get on absent link non-nil")
	}
}

func TestScoreTable(t *testing.T) {
	truth := asrel.NewTable()
	truth.Set(1, 2, asrel.P2C)
	truth.Set(3, 4, asrel.P2P)
	truth.Set(5, 6, asrel.P2C)
	truth.Set(7, 8, asrel.C2P)

	inferred := asrel.NewTable()
	inferred.Set(1, 2, asrel.P2C) // correct
	inferred.Set(3, 4, asrel.P2C) // peer inferred as transit
	inferred.Set(5, 6, asrel.P2P) // transit inferred as peer
	// 7-8 unclassified

	links := []asrel.LinkKey{
		asrel.Key(1, 2), asrel.Key(3, 4), asrel.Key(5, 6), asrel.Key(7, 8),
		asrel.Key(9, 10), // no truth: not counted
	}
	s := ScoreTable(inferred, truth, links)
	if s.Total != 4 || s.Classified != 3 || s.Correct != 1 {
		t.Errorf("score = %+v", s)
	}
	if s.PeerAsTransit != 1 || s.TransitAsPeer != 1 {
		t.Errorf("confusions = %+v", s)
	}
	if s.Coverage() != 0.75 {
		t.Errorf("coverage = %v", s.Coverage())
	}
	if s.Accuracy() != 1.0/3.0 {
		t.Errorf("accuracy = %v", s.Accuracy())
	}
	empty := ScoreTable(inferred, asrel.NewTable(), links)
	if empty.Coverage() != 0 || empty.Accuracy() != 0 {
		t.Error("empty score division")
	}
}

func TestScorePerClass(t *testing.T) {
	truth := asrel.NewTable()
	truth.Set(1, 2, asrel.P2C)
	truth.Set(3, 4, asrel.P2C)
	truth.Set(5, 6, asrel.P2P)
	truth.Set(7, 8, asrel.P2P)
	truth.Set(9, 10, asrel.S2S)

	inferred := asrel.NewTable()
	inferred.Set(1, 2, asrel.P2C)  // TP for p2c
	inferred.Set(3, 4, asrel.P2P)  // FN for p2c, FP for p2p
	inferred.Set(5, 6, asrel.P2P)  // TP for p2p
	inferred.Set(9, 10, asrel.P2C) // FN for s2s, FP for p2c
	// 7-8 unclassified: FN for p2p, no FP anywhere.

	links := []asrel.LinkKey{
		asrel.Key(1, 2), asrel.Key(3, 4), asrel.Key(5, 6),
		asrel.Key(7, 8), asrel.Key(9, 10),
	}
	s := ScoreTable(inferred, truth, links)

	if got, want := s.Class(asrel.P2C), (ClassCount{TP: 1, FP: 1, FN: 1}); got != want {
		t.Errorf("p2c = %+v, want %+v", got, want)
	}
	if got, want := s.Class(asrel.P2P), (ClassCount{TP: 1, FP: 1, FN: 1}); got != want {
		t.Errorf("p2p = %+v, want %+v", got, want)
	}
	if got, want := s.Class(asrel.S2S), (ClassCount{FN: 1}); got != want {
		t.Errorf("s2s = %+v, want %+v", got, want)
	}
	if p := s.Precision(asrel.P2C); p != 0.5 {
		t.Errorf("p2c precision = %v, want 0.5", p)
	}
	if r := s.Recall(asrel.P2P); r != 0.5 {
		t.Errorf("p2p recall = %v, want 0.5", r)
	}
	if s.Class(asrel.P2C).Truth() != 2 || s.Class(asrel.S2S).Truth() != 1 {
		t.Errorf("truth denominators wrong: %+v", s.ByClass)
	}
	// A class that never appears divides to zero, not NaN.
	if s.Precision(asrel.C2P) != 0 || s.Recall(asrel.C2P) != 0 {
		t.Error("absent class should score 0/0 as 0")
	}

	// The per-class tallies reconcile with the aggregate counters: every
	// graded link contributes exactly one TP or one FN.
	tp, fn := 0, 0
	for _, c := range s.ByClass {
		tp += c.TP
		fn += c.FN
	}
	if tp != s.Correct || tp+fn != s.Total {
		t.Errorf("per-class tallies (tp=%d fn=%d) disagree with aggregate %+v", tp, fn, s)
	}
}

func TestScoreEmptyLinkSet(t *testing.T) {
	truth := asrel.NewTable()
	truth.Set(1, 2, asrel.P2C)
	inferred := asrel.NewTable()
	inferred.Set(1, 2, asrel.P2C)

	s := ScoreTable(inferred, truth, nil)
	if s.Total != 0 || s.Classified != 0 || s.Correct != 0 {
		t.Errorf("empty link set scored %+v", s)
	}
	if s.ByClass != nil {
		t.Errorf("empty link set allocated ByClass %v", s.ByClass)
	}
	if s.Coverage() != 0 || s.Accuracy() != 0 {
		t.Error("empty link set divisions should be 0")
	}
	if s.Precision(asrel.P2C) != 0 || s.Recall(asrel.P2C) != 0 {
		t.Error("per-class lookups on a nil map should be 0")
	}
}

func TestScoreAllUnclassified(t *testing.T) {
	truth := asrel.NewTable()
	truth.Set(1, 2, asrel.P2C)
	truth.Set(3, 4, asrel.P2P)
	links := []asrel.LinkKey{asrel.Key(1, 2), asrel.Key(3, 4)}

	s := ScoreTable(asrel.NewTable(), truth, links)
	if s.Total != 2 || s.Classified != 0 || s.Correct != 0 {
		t.Errorf("all-unclassified scored %+v", s)
	}
	if s.Accuracy() != 0 {
		t.Errorf("accuracy = %v, want 0 (no NaN)", s.Accuracy())
	}
	// Every truth link is a miss for its class; nothing is a false
	// positive because nothing was inferred.
	if got, want := s.Class(asrel.P2C), (ClassCount{FN: 1}); got != want {
		t.Errorf("p2c = %+v, want %+v", got, want)
	}
	if got, want := s.Class(asrel.P2P), (ClassCount{FN: 1}); got != want {
		t.Errorf("p2p = %+v, want %+v", got, want)
	}
	if s.Recall(asrel.P2C) != 0 || s.Precision(asrel.P2P) != 0 {
		t.Error("recall/precision of missed classes should be 0")
	}
}
