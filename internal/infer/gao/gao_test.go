package gao

import (
	"testing"

	"hybridrel/internal/asrel"
	"hybridrel/internal/dataset"
	"hybridrel/internal/gen"
	"hybridrel/internal/infer"
	"hybridrel/internal/testutil"
)

func p(asns ...asrel.ASN) *dataset.PathObs {
	return &dataset.PathObs{Vantage: asns[0], Path: asns}
}

// starPaths builds a hub-and-spoke world: AS1 is the high-degree top,
// spokes 10..N are stubs behind it, and vantages observe through 1.
func starPaths() []*dataset.PathObs {
	var paths []*dataset.PathObs
	// Vantage 10 sees every other spoke via the hub.
	for spoke := asrel.ASN(11); spoke <= 18; spoke++ {
		paths = append(paths, p(10, 1, spoke))
	}
	return paths
}

func TestInferStarTopology(t *testing.T) {
	res := Infer(starPaths(), DefaultConfig())
	// Origin-side edges (1, spoke): 1 provider of spoke.
	for spoke := asrel.ASN(11); spoke <= 18; spoke++ {
		if got := res.Table.Get(1, spoke); got != asrel.P2C {
			t.Errorf("rel(1,%d) = %s, want p2c", spoke, got)
		}
	}
	// Vantage-side edge (10, 1): 10 is customer — but it is top-adjacent
	// with a huge degree gap, so the peering pass must not fire.
	if got := res.Table.Get(10, 1); got != asrel.C2P {
		t.Errorf("rel(10,1) = %s, want c2p", got)
	}
}

func TestPeeringPassFires(t *testing.T) {
	// Two similar-degree transit ASes 1 and 2 exchanging their customer
	// cones: the 1-2 link is always top-adjacent and balanced.
	paths := []*dataset.PathObs{
		p(10, 1, 2, 20),
		p(11, 1, 2, 21),
		p(20, 2, 1, 10),
		p(21, 2, 1, 11),
	}
	res := Infer(paths, DefaultConfig())
	if got := res.Table.Get(1, 2); got != asrel.P2P {
		t.Errorf("rel(1,2) = %s, want p2p from the peering pass", got)
	}
	if res.Peerings == 0 {
		t.Error("no peerings counted")
	}
}

func TestPeeringBlockedWhenInterior(t *testing.T) {
	// If the 1-2 link also appears in the interior of a path whose top
	// is elsewhere, it is disqualified from peering.
	big := p(10, 1, 2, 20)
	// Make AS5 the top by inflating its degree.
	var paths []*dataset.PathObs
	paths = append(paths, big)
	paths = append(paths, p(30, 5, 1, 2, 20))
	for x := asrel.ASN(40); x < 52; x++ {
		paths = append(paths, p(x, 5, x+100))
	}
	res := Infer(paths, DefaultConfig())
	if got := res.Table.Get(1, 2); got == asrel.P2P {
		t.Error("interior link classified as peering")
	}
}

func TestSiblingOnBalancedConflict(t *testing.T) {
	// Link 1-2 annotated downhill in one path and uphill in another,
	// with tops elsewhere (interior positions), balancing the votes.
	var paths []*dataset.PathObs
	paths = append(paths, p(30, 5, 1, 2, 20)) // top 5 → 1 provider... origin side: p2c votes
	paths = append(paths, p(31, 5, 2, 1, 21)) // reversed order
	for x := asrel.ASN(40); x < 52; x++ {
		paths = append(paths, p(x, 5, x+100))
	}
	res := Infer(paths, DefaultConfig())
	if got := res.Table.Get(1, 2); got != asrel.S2S {
		t.Errorf("rel(1,2) = %s, want s2s from balanced conflict", got)
	}
	if res.Siblings == 0 {
		t.Error("no siblings counted")
	}
}

func TestConfigDefaults(t *testing.T) {
	res := Infer(starPaths(), Config{}) // zero ratio falls back to 60
	if res.Table.Len() == 0 {
		t.Error("zero config produced nothing")
	}
}

// TestAccuracyOnSyntheticV4 pins the baseline's overall behaviour: solid
// but imperfect transit detection on the v4 plane — the misinference
// floor the paper attributes to degree heuristics.
func TestAccuracyOnSyntheticV4(t *testing.T) {
	w, err := testutil.BuildWorld(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := Infer(w.D4.Paths(), DefaultConfig())
	s := infer.ScoreTable(res.Table, w.In.Truth4, w.D4.Links())
	if s.Coverage() < 0.95 {
		t.Errorf("gao coverage = %.3f; the heuristic classifies every voted link", s.Coverage())
	}
	if s.Accuracy() < 0.60 || s.Accuracy() > 0.999 {
		t.Errorf("gao accuracy = %.3f; expected solid-but-imperfect", s.Accuracy())
	}
	t.Logf("gao v4: coverage %.1f%% accuracy %.1f%% (peer→transit %d, transit→peer %d)",
		100*s.Coverage(), 100*s.Accuracy(), s.PeerAsTransit, s.TransitAsPeer)
}
