// Package gao reimplements the classic degree-based Type-of-Relationship
// algorithm of Gao (IEEE/ACM ToN 2001), the ancestor of the heuristics
// the paper critiques. For each AS path the highest-degree AS is taken
// as the top provider; edges on the vantage side of the top are
// annotated customer→provider, edges on the origin side
// provider→customer. Aggregated annotations yield transit relationships
// (conflicting balanced annotations yield siblings), and links adjacent
// to a path top whose endpoint degrees are within a ratio R are
// classified as peering — the step that systematically turns large-AS
// transit links (the paper's H1 hybrids) into false peerings.
//
// Simplifications against the published algorithm are documented in
// DESIGN.md; the structure (degree split, annotation voting, top-adjacent
// peering pass) follows the paper.
package gao

import (
	"hybridrel/internal/asrel"
	"hybridrel/internal/dataset"
	"hybridrel/internal/infer"
)

// Config tunes the heuristic.
type Config struct {
	// DegreeRatio is Gao's R: a top-adjacent link is a peering candidate
	// when max(deg)/min(deg) ≤ R. The paper used 60.
	DegreeRatio float64
	// MinDegree is the floor both endpoints must reach before the
	// peering pass may fire; it keeps single-homed stub uplinks (degree
	// 1-2) out of the peering class.
	MinDegree int
}

// DefaultConfig matches the published parameterization.
func DefaultConfig() Config { return Config{DegreeRatio: 60, MinDegree: 3} }

// Result is the inference outcome.
type Result struct {
	Table *asrel.Table
	// Siblings counts links resolved as s2s from balanced conflicts.
	Siblings int
	// Peerings counts links resolved by the peering pass.
	Peerings int
}

// Infer runs the algorithm over the observed paths.
func Infer(paths []*dataset.PathObs, cfg Config) *Result {
	if cfg.DegreeRatio <= 0 {
		cfg.DegreeRatio = 60
	}
	if cfg.MinDegree <= 0 {
		cfg.MinDegree = 3
	}
	deg := degrees(paths)

	votes := infer.NewVoteTable()
	notPeer := make(map[asrel.LinkKey]bool)
	topAdj := make(map[asrel.LinkKey]bool)
	for _, p := range paths {
		if len(p.Path) < 2 {
			continue
		}
		j := topIndex(p.Path, deg)
		for i := 0; i+1 < len(p.Path); i++ {
			k := asrel.Key(p.Path[i], p.Path[i+1])
			if i < j {
				// Vantage side: the route descended toward the vantage.
				votes.Add(p.Path[i], p.Path[i+1], asrel.C2P)
			} else {
				// Origin side: the route climbed away from the origin.
				votes.Add(p.Path[i], p.Path[i+1], asrel.P2C)
			}
			if i == j-1 || i == j {
				topAdj[k] = true
			} else {
				notPeer[k] = true
			}
		}
	}

	res := &Result{Table: asrel.NewTable()}
	for _, k := range votes.Keys() {
		v := votes.Get(k)
		if topAdj[k] && !notPeer[k] &&
			deg[k.Lo] >= cfg.MinDegree && deg[k.Hi] >= cfg.MinDegree &&
			ratioOK(deg[k.Lo], deg[k.Hi], cfg.DegreeRatio) {
			res.Table.SetKey(k, asrel.P2P)
			res.Peerings++
			continue
		}
		switch {
		case v.P2C > v.C2P:
			res.Table.SetKey(k, asrel.P2C)
		case v.C2P > v.P2C:
			res.Table.SetKey(k, asrel.C2P)
		case v.P2C > 0:
			// Balanced conflicting transit annotations: sibling.
			res.Table.SetKey(k, asrel.S2S)
			res.Siblings++
		}
	}
	return res
}

// degrees computes observed AS degrees (distinct neighbors) from paths.
func degrees(paths []*dataset.PathObs) map[asrel.ASN]int {
	nbrs := make(map[asrel.ASN]map[asrel.ASN]struct{})
	for _, p := range paths {
		for i := 0; i+1 < len(p.Path); i++ {
			a, b := p.Path[i], p.Path[i+1]
			if nbrs[a] == nil {
				nbrs[a] = make(map[asrel.ASN]struct{})
			}
			if nbrs[b] == nil {
				nbrs[b] = make(map[asrel.ASN]struct{})
			}
			nbrs[a][b] = struct{}{}
			nbrs[b][a] = struct{}{}
		}
	}
	deg := make(map[asrel.ASN]int, len(nbrs))
	for a, n := range nbrs {
		deg[a] = len(n)
	}
	return deg
}

// topIndex returns the position of the highest-degree AS (first
// occurrence on ties).
func topIndex(path []asrel.ASN, deg map[asrel.ASN]int) int {
	best, bestDeg := 0, -1
	for i, a := range path {
		if d := deg[a]; d > bestDeg {
			best, bestDeg = i, d
		}
	}
	return best
}

func ratioOK(a, b int, r float64) bool {
	if a <= 0 || b <= 0 {
		return false
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return float64(hi) <= r*float64(lo)
}
