package locpref

import (
	"testing"

	"hybridrel/internal/asrel"
	"hybridrel/internal/bgp"
	"hybridrel/internal/community"
	"hybridrel/internal/dataset"
	"hybridrel/internal/gen"
	communityinfer "hybridrel/internal/infer/communities"
	"hybridrel/internal/testutil"
)

func obsLP(path []asrel.ASN, lp uint32, comms ...bgp.Community) *dataset.PathObs {
	return &dataset.PathObs{Vantage: path[0], Path: path, LocPrf: lp, HasLocPrf: true, Communities: comms}
}

func TestCalibrateAndApply(t *testing.T) {
	// Vantage 10: the communities table anchors neighbors 20 (customer,
	// LocPrf 300) and 30 (peer, LocPrf 200). Neighbor 40 is uncovered
	// and arrives with LocPrf 300 → customer.
	base := asrel.NewTable()
	base.Set(10, 20, asrel.P2C)
	base.Set(10, 30, asrel.P2P)
	paths := []*dataset.PathObs{
		obsLP([]asrel.ASN{10, 20, 99}, 300),
		obsLP([]asrel.ASN{10, 30, 98}, 200),
		obsLP([]asrel.ASN{10, 40, 97}, 300),
	}
	res := Infer(paths, community.NewDictionary(), base, Config{MinSupport: 1})
	if res.CalibratedVantages != 1 {
		t.Errorf("CalibratedVantages = %d", res.CalibratedVantages)
	}
	if got := res.Table.Get(10, 40); got != asrel.P2C {
		t.Errorf("rel(10,40) = %s, want p2c via the 300 band", got)
	}
	if res.Applied != 1 {
		t.Errorf("Applied = %d", res.Applied)
	}
}

func TestTEFiltering(t *testing.T) {
	dict := community.NewDictionary()
	te := bgp.MakeCommunity(10, 9000)
	dict.Set(te, community.MeaningTE)

	base := asrel.NewTable()
	base.Set(10, 20, asrel.P2C)
	paths := []*dataset.PathObs{
		obsLP([]asrel.ASN{10, 20, 99}, 300),
		// TE route with a misleading LocPrf on an uncovered link: must
		// not be classified.
		obsLP([]asrel.ASN{10, 40, 97}, 300, te),
	}
	res := Infer(paths, dict, base, Config{MinSupport: 1})
	if res.FilteredTE != 1 {
		t.Errorf("FilteredTE = %d", res.FilteredTE)
	}
	if res.Table.Has(10, 40) {
		t.Error("TE route classified a link")
	}
}

func TestAmbiguousBandDropped(t *testing.T) {
	// LocPrf 250 maps to both customer and peer at this vantage: the
	// band is unusable.
	base := asrel.NewTable()
	base.Set(10, 20, asrel.P2C)
	base.Set(10, 30, asrel.P2P)
	paths := []*dataset.PathObs{
		obsLP([]asrel.ASN{10, 20, 99}, 250),
		obsLP([]asrel.ASN{10, 30, 98}, 250),
		obsLP([]asrel.ASN{10, 40, 97}, 250),
	}
	res := Infer(paths, community.NewDictionary(), base, Config{MinSupport: 1})
	if res.Conflicts != 1 {
		t.Errorf("Conflicts = %d", res.Conflicts)
	}
	if res.Table.Has(10, 40) {
		t.Error("link classified from an ambiguous band")
	}
}

func TestNoLocPrfNoInference(t *testing.T) {
	base := asrel.NewTable()
	base.Set(10, 20, asrel.P2C)
	paths := []*dataset.PathObs{
		{Vantage: 10, Path: []asrel.ASN{10, 20, 99}, LocPrf: 300}, // HasLocPrf false
	}
	res := Infer(paths, community.NewDictionary(), base, Config{MinSupport: 1})
	if res.CalibratedVantages != 0 || res.Table.Len() != 0 {
		t.Error("inference ran without LocPrf feeds")
	}
}

func TestPerVantageIsolation(t *testing.T) {
	// Vantage 10 uses 300=customer; vantage 11 uses 300=peer. Each must
	// calibrate independently.
	base := asrel.NewTable()
	base.Set(10, 20, asrel.P2C)
	base.Set(11, 21, asrel.P2P)
	paths := []*dataset.PathObs{
		obsLP([]asrel.ASN{10, 20, 99}, 300),
		obsLP([]asrel.ASN{10, 40, 97}, 300),
		obsLP([]asrel.ASN{11, 21, 99}, 300),
		obsLP([]asrel.ASN{11, 41, 97}, 300),
	}
	res := Infer(paths, community.NewDictionary(), base, Config{MinSupport: 1})
	if got := res.Table.Get(10, 40); got != asrel.P2C {
		t.Errorf("vantage 10 band: rel(10,40) = %s", got)
	}
	if got := res.Table.Get(11, 41); got != asrel.P2P {
		t.Errorf("vantage 11 band: rel(11,41) = %s", got)
	}
}

// TestExtendsCoverageCorrectly runs the full Rosetta-stone flow on the
// synthetic world: LocPrf inference must add links beyond the
// communities table, and at the default support threshold the
// overwhelming majority of them must be correct. Perfect accuracy is
// not attainable: the world contains undocumented TE communities whose
// LocPrf overrides are invisible to the filter, exactly the residual
// error source the paper's methodology tolerates.
func TestExtendsCoverageCorrectly(t *testing.T) {
	// Depress community adoption and widen the LocPrf feeds so the
	// Rosetta-stone step has real work: the communities table then
	// leaves many vantage-adjacent links uncovered.
	cfg := gen.SmallConfig()
	cfg.CommunityAdoptTransit = 0.55
	cfg.CommunityAdoptStub = 0.15
	cfg.NumVantages = 48
	cfg.VantageLocPrfFrac = 0.85
	w, err := testutil.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	paths := w.D6.Paths()
	base := communityinfer.Infer(paths, w.Dict)
	res := Infer(paths, w.Dict, base.Table, DefaultConfig())
	if res.CalibratedVantages == 0 {
		t.Fatal("no vantage calibrated")
	}
	added, wrong := 0, 0
	res.Table.Links(func(k asrel.LinkKey, r asrel.Rel) {
		if base.Table.GetKey(k).Known() {
			t.Errorf("locpref re-inferred covered link %s", k)
		}
		added++
		if want := w.In.Truth6.GetKey(k); want != r {
			wrong++
		}
	})
	if added == 0 {
		t.Fatal("locpref added no links")
	}
	if float64(wrong) > 0.1*float64(added) {
		t.Errorf("locpref misinferred %d of %d added links", wrong, added)
	}
	t.Logf("locpref added %d links (%d wrong) over %d community links (filtered %d TE routes)",
		added, wrong, base.Table.Len(), res.FilteredTE)
	if res.FilteredTE == 0 {
		t.Error("no TE routes filtered; TE noise missing from the world")
	}
}
