// Package locpref implements the paper's second inference method: using
// the Local Preference attribute, calibrated per vantage against the
// communities-derived relationships (the "Rosetta stone"), to classify
// the links between a vantage AS and its neighbors.
//
// LOCAL_PREF is non-transitive, so it only reveals the relationship of
// the vantage's own import edge — but operators order it
// customer > peer > provider with operator-specific values, so once a
// handful of community-confirmed routes anchor a vantage's bands, the
// remaining routes of that vantage classify their first-hop links.
// Routes carrying a traffic-engineering community are excluded from both
// calibration and application: their LocPrf was overridden.
package locpref

import (
	"hybridrel/internal/asrel"
	"hybridrel/internal/bgp"
	"hybridrel/internal/community"
	"hybridrel/internal/dataset"
	"hybridrel/internal/infer"
)

// Config tunes the calibration.
type Config struct {
	// MinSupport is the number of community-confirmed routes a LocPrf
	// value needs before it becomes a usable band. Values above 1 defend
	// against LocPrf overrides whose TE community is undocumented (and
	// therefore invisible to the filter): such values either fail to
	// reach the support threshold or collect conflicting relationships
	// and are discarded.
	MinSupport int
}

// DefaultConfig uses a support threshold of two.
func DefaultConfig() Config { return Config{MinSupport: 2} }

// Result is the outcome of LocPrf inference.
type Result struct {
	// Table holds relationships newly inferred from LocPrf (links the
	// base table did not cover).
	Table *asrel.Table
	// CalibratedVantages counts vantages with at least one usable
	// LocPrf→relationship band.
	CalibratedVantages int
	// FilteredTE counts routes excluded because of a TE community.
	FilteredTE int
	// Applied counts routes that produced a vote on an uncovered link.
	Applied int
	// Conflicts counts calibration values discarded for mapping to
	// multiple relationships.
	Conflicts int

	cfg Config
}

// Infer calibrates and applies LocPrf per vantage. base is the
// communities-derived table used both as calibration anchor and to skip
// already-covered links.
func Infer(paths []*dataset.PathObs, dict *community.Dictionary, base *asrel.Table, cfg Config) *Result {
	if cfg.MinSupport < 1 {
		cfg.MinSupport = 2
	}
	res := &Result{cfg: cfg}
	byVantage := make(map[asrel.ASN][]*dataset.PathObs)
	var vantages []asrel.ASN
	for _, p := range paths {
		if !Eligible(p) {
			continue
		}
		if _, ok := byVantage[p.Vantage]; !ok {
			vantages = append(vantages, p.Vantage)
		}
		byVantage[p.Vantage] = append(byVantage[p.Vantage], p)
	}

	votes := infer.NewVoteTable()
	for _, v := range vantages {
		st := InferVantage(v, byVantage[v], dict, base, cfg, votes.Add)
		res.accumulate(st)
	}
	res.Table = votes.Resolve()
	return res
}

func (res *Result) accumulate(st VantageStats) {
	if st.Calibrated {
		res.CalibratedVantages++
	}
	res.FilteredTE += st.FilteredTE
	res.Applied += st.Applied
	res.Conflicts += st.Conflicts
}

// Eligible reports whether a path participates in LocPrf inference at
// all — the filter both Infer's grouping pass and the live engine's
// per-vantage bookkeeping apply.
func Eligible(p *dataset.PathObs) bool {
	return p.HasLocPrf && len(p.Path) >= 2
}

// VantageStats tallies one vantage's calibration-and-application pass.
type VantageStats struct {
	Calibrated bool
	FilteredTE int
	Applied    int
	Conflicts  int
}

// InferVantage runs the calibration and application for one vantage
// over its eligible paths, emitting one directed vote per applied
// route: emit(v, neighbor, rel) asserts the vantage's relationship
// toward its first hop. Path order within the vantage is irrelevant —
// calibration counts and emitted vote multisets are order-independent
// — which is what lets the live engine recompute a single vantage in
// isolation and still match batch Infer exactly. base is read for
// first-hop coverage only.
func InferVantage(v asrel.ASN, paths []*dataset.PathObs, dict *community.Dictionary, base *asrel.Table, cfg Config, emit func(a, b asrel.ASN, rel asrel.Rel)) VantageStats {
	if cfg.MinSupport < 1 {
		cfg.MinSupport = 2
	}
	var st VantageStats
	// Calibration: LocPrf value → relationship counts, from routes whose
	// first-hop relationship the communities already established.
	calib := make(map[uint32]map[asrel.Rel]int)
	type application struct {
		neighbor asrel.ASN
		locPrf   uint32
	}
	var apply []application

	for _, p := range paths {
		if hasTE(p.Communities, dict) {
			st.FilteredTE++
			continue
		}
		neighbor := p.Path[1]
		rel := base.Get(v, neighbor)
		if rel.Known() {
			m := calib[p.LocPrf]
			if m == nil {
				m = make(map[asrel.Rel]int)
				calib[p.LocPrf] = m
			}
			m[rel]++
			continue
		}
		apply = append(apply, application{neighbor: neighbor, locPrf: p.LocPrf})
	}

	// Keep only unambiguous, well-supported bands.
	bands := make(map[uint32]asrel.Rel, len(calib))
	for val, m := range calib {
		if len(m) != 1 {
			st.Conflicts++
			continue
		}
		for rel, n := range m {
			if n >= cfg.MinSupport {
				bands[val] = rel
			}
		}
	}
	if len(bands) == 0 {
		return st
	}
	st.Calibrated = true
	for _, a := range apply {
		rel, ok := bands[a.locPrf]
		if !ok {
			continue
		}
		emit(v, a.neighbor, rel)
		st.Applied++
	}
	return st
}

func hasTE(comms []bgp.Community, dict *community.Dictionary) bool {
	for _, c := range comms {
		if m, ok := dict.Lookup(c); ok && m == community.MeaningTE {
			return true
		}
	}
	return false
}
