package gen

import (
	"sort"

	"hybridrel/internal/asrel"
	"hybridrel/internal/topology"
)

// assignLeaks installs the two classes of route-leak rules in the IPv6
// plane: relaxers, which restore reachability across the tier-1 dispute
// by re-exporting each disputant's routes to the other (the paper's
// "relaxation of the valley-free rule ... to expand the reachability of
// IPv6 prefixes"), and noise leakers, whose scoped leaks create valley
// paths with valley-free alternatives.
func (b *builder) assignLeaks() {
	in := b.in
	if b.cfg.Dispute {
		relaxers := b.findOrMakeRelaxers()
		for _, r := range relaxers {
			in.Leaks = append(in.Leaks,
				Leak{At: r, Via: in.DisputeA, To: in.DisputeB},
				Leak{At: r, Via: in.DisputeB, To: in.DisputeA},
			)
		}
	}
	// Noise leakers: transit v6 ASes re-exporting a peer- or
	// provider-learned route to another peer or provider.
	var cands []asrel.ASN
	for _, t := range b.transits {
		a := in.ASes[t]
		if !a.IPv6 || a.Tier == topology.Tier1 {
			continue
		}
		up := append(in.Graph6.Providers(in.Truth6, t), in.Graph6.Peers(in.Truth6, t)...)
		if len(up) >= 2 {
			cands = append(cands, t)
		}
	}
	for i := 0; i < b.cfg.NumNoiseLeakers && len(cands) > 0; i++ {
		at := cands[b.rng.Intn(len(cands))]
		up := append(in.Graph6.Providers(in.Truth6, at), in.Graph6.Peers(in.Truth6, at)...)
		sort.Slice(up, func(x, y int) bool { return up[x] < up[y] })
		via := up[b.rng.Intn(len(up))]
		to := up[b.rng.Intn(len(up))]
		if via == to {
			continue
		}
		in.Leaks = append(in.Leaks, Leak{At: at, Via: via, To: to})
	}
}

// findOrMakeRelaxers returns ASes that are v6 customers of both
// disputants, buying the missing transit links where necessary.
func (b *builder) findOrMakeRelaxers() []asrel.ASN {
	in := b.in
	var out []asrel.ASN
	for _, t := range b.transits {
		a := in.ASes[t]
		if !a.IPv6 || a.Tier == topology.Tier1 {
			continue
		}
		if in.Truth6.Get(t, in.DisputeA) == asrel.C2P && in.Truth6.Get(t, in.DisputeB) == asrel.C2P {
			out = append(out, t)
			if len(out) >= b.cfg.NumRelaxers {
				return out
			}
		}
	}
	// Not enough natural dual customers: upgrade v6 transit ASes into
	// customers of both disputants.
	for _, t := range b.transits {
		if len(out) >= b.cfg.NumRelaxers {
			break
		}
		a := in.ASes[t]
		if !a.IPv6 || a.Tier == topology.Tier1 {
			continue
		}
		already := false
		for _, r := range out {
			if r == t {
				already = true
			}
		}
		if already {
			continue
		}
		okA := in.Truth6.Get(t, in.DisputeA) == asrel.C2P
		okB := in.Truth6.Get(t, in.DisputeB) == asrel.C2P
		if !okA && in.Graph6.HasLink(t, in.DisputeA) {
			continue // linked with a non-transit relationship; skip
		}
		if !okB && in.Graph6.HasLink(t, in.DisputeB) {
			continue
		}
		if !okA {
			in.Graph6.AddLink(in.DisputeA, t)
			in.Truth6.Set(in.DisputeA, t, asrel.P2C)
		}
		if !okB {
			in.Graph6.AddLink(in.DisputeB, t)
			in.Truth6.Set(in.DisputeB, t, asrel.P2C)
		}
		out = append(out, t)
	}
	return out
}

// assignPolicies draws each AS's community scheme, scrubbing behaviour,
// LocPrf bands and TE tags. Band ordering LocCustomer > LocPeer >
// LocProvider always holds; the absolute values differ per AS, which is
// why the paper needs the communities "Rosetta stone" to interpret them.
func (b *builder) assignPolicies() {
	in := b.in
	for _, asn := range in.Order {
		a := in.ASes[asn]
		p := &a.Policy
		adopt := b.cfg.CommunityAdoptStub
		if a.Tier != topology.TierStub {
			adopt = b.cfg.CommunityAdoptTransit
		}
		p.DefinesCommunities = b.rng.Float64() < adopt
		p.Documented = p.DefinesCommunities && b.rng.Float64() < b.cfg.IRRDocumentedProb
		p.Strips = a.Tier == topology.Tier2 && b.rng.Float64() < b.cfg.CommunityStripProb
		p.Dialect = b.rng.Intn(3)

		base := []uint16{100, 500, 1000, 2000, 3000}[b.rng.Intn(5)]
		step := []uint16{1, 10, 100}[b.rng.Intn(3)]
		p.CustomerTag = base
		p.PeerTag = base + step
		p.ProviderTag = base + 2*step
		nTE := 2 + b.rng.Intn(2)
		for i := 0; i < nTE; i++ {
			p.TETags = append(p.TETags, 9000+uint16(b.rng.Intn(90))*10+uint16(i))
		}

		p.LocCustomer = 250 + uint32(b.rng.Intn(150))
		p.LocPeer = 150 + uint32(b.rng.Intn(95))
		p.LocProvider = 50 + uint32(b.rng.Intn(95))
	}
}

// assignPrefixes gives every AS one IPv4 prefix, every v6 AS one IPv6
// prefix, and the highest-degree v6 ASes a few extra v6 prefixes.
func (b *builder) assignPrefixes() {
	in := b.in
	v4idx, v6idx := 0, 0
	for _, asn := range in.Order {
		a := in.ASes[asn]
		a.Prefixes4 = append(a.Prefixes4, v4Prefix(v4idx))
		v4idx++
		if a.IPv6 {
			a.Prefixes6 = append(a.Prefixes6, v6Prefix(v6idx))
			v6idx++
		}
	}
	if b.cfg.ExtraPrefixLargeAS > 0 {
		var v6ases []asrel.ASN
		for _, asn := range in.Order {
			if in.ASes[asn].IPv6 {
				v6ases = append(v6ases, asn)
			}
		}
		sort.Slice(v6ases, func(i, j int) bool {
			di, dj := in.Graph6.Degree(v6ases[i]), in.Graph6.Degree(v6ases[j])
			if di != dj {
				return di > dj
			}
			return v6ases[i] < v6ases[j]
		})
		top := len(v6ases) / 20
		if top > 200 {
			top = 200
		}
		for _, asn := range v6ases[:top] {
			for e := 0; e < b.cfg.ExtraPrefixLargeAS && v6idx < 1<<16; e++ {
				in.ASes[asn].Prefixes6 = append(in.ASes[asn].Prefixes6, v6Prefix(v6idx))
				v6idx++
			}
		}
	}
}

// pickVantages selects the collector peers: both disputants (collectors
// peered with both AS6939 and AS174 in 2010), then a transit-weighted
// sample of the remaining v6 ASes. VantageLocPrfFrac of the vantages
// provide iBGP-style feeds carrying LOCAL_PREF.
func (b *builder) pickVantages() {
	in := b.in
	want := b.cfg.NumVantages
	seen := make(map[asrel.ASN]bool)
	add := func(asn asrel.ASN) {
		if !seen[asn] && len(in.Vantages) < want {
			seen[asn] = true
			in.Vantages = append(in.Vantages, asn)
		}
	}
	if b.cfg.Dispute {
		add(in.DisputeA)
		add(in.DisputeB)
	}
	var cands []asrel.ASN
	var weights []float64
	for _, asn := range in.Order {
		a := in.ASes[asn]
		if !a.IPv6 || seen[asn] {
			continue
		}
		cands = append(cands, asn)
		w := 1.0
		if a.Tier == topology.Tier2 {
			w = 4.0
		} else if a.Tier == topology.Tier1 {
			w = 2.0
		}
		weights = append(weights, w)
	}
	for len(in.Vantages) < want && len(cands) > 0 {
		total := 0.0
		for i, c := range cands {
			if !seen[c] {
				total += weights[i]
			}
		}
		if total <= 0 {
			break
		}
		x := b.rng.Float64() * total
		for i, c := range cands {
			if seen[c] {
				continue
			}
			x -= weights[i]
			if x <= 0 {
				add(c)
				break
			}
		}
	}
	for i, v := range in.Vantages {
		if float64(i) < b.cfg.VantageLocPrfFrac*float64(len(in.Vantages)) {
			in.VantageLocPrf[v] = true
		}
	}
	sort.Slice(in.Vantages, func(i, j int) bool { return in.Vantages[i] < in.Vantages[j] })
}
