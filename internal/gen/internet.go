package gen

import (
	"fmt"
	"net/netip"

	"hybridrel/internal/asrel"
	"hybridrel/internal/topology"
)

// AS is one synthetic autonomous system with its ground-truth role and
// its routing policies.
type AS struct {
	ASN  asrel.ASN
	Tier topology.Tier
	// Layer refines Tier2 into the transit hierarchy: 1 = national
	// carrier (buys from tier-1), 2 = regional (buys from layer 1),
	// 3 = access network (buys from layer 2). Zero for tier-1s and
	// stubs.
	Layer int
	// IPv6 reports whether the AS participates in the IPv6 plane.
	IPv6 bool
	// Prefixes4 / Prefixes6 are the prefixes the AS originates.
	Prefixes4 []netip.Prefix
	Prefixes6 []netip.Prefix
	// Policy is the AS's community scheme and LocPrf bands.
	Policy Policy
}

// Policy is an AS's BGP policy surface as relevant to the paper: the
// communities it attaches on ingress, whether it scrubs communities on
// export, its LocPrf bands per neighbor class, and its traffic
// engineering tags.
type Policy struct {
	// DefinesCommunities: the AS tags routes on ingress with a
	// relationship community from its scheme.
	DefinesCommunities bool
	// Documented: the scheme appears in the (synthetic) IRR. Undocumented
	// schemes produce communities the miner cannot interpret.
	Documented bool
	// Strips: the AS removes all communities when exporting routes.
	Strips bool
	// CustomerTag / PeerTag / ProviderTag are the community values the
	// AS attaches for routes learned from a customer / peer / provider.
	CustomerTag uint16
	PeerTag     uint16
	ProviderTag uint16
	// TETags are the AS's traffic-engineering community values (backup,
	// prepend requests); routes carrying one have a tweaked LocPrf.
	TETags []uint16
	// LocCustomer / LocPeer / LocProvider are the AS's LocPrf bands.
	// Ground truth maintains LocCustomer > LocPeer > LocProvider.
	LocCustomer uint32
	LocPeer     uint32
	LocProvider uint32
	// Dialect selects the IRR remark syntax used to document the scheme.
	Dialect int
}

// TagFor returns the community value the AS attaches for a route
// learned over the given relationship (the relationship is from the AS
// toward the neighbor it learned from: P2C means "learned from my
// customer").
func (p *Policy) TagFor(relToNeighbor asrel.Rel) (uint16, bool) {
	if !p.DefinesCommunities {
		return 0, false
	}
	switch relToNeighbor {
	case asrel.P2C:
		return p.CustomerTag, true
	case asrel.P2P:
		return p.PeerTag, true
	case asrel.C2P:
		return p.ProviderTag, true
	}
	return 0, false
}

// LocPrfFor returns the AS's base LocPrf for a route learned over the
// given relationship class.
func (p *Policy) LocPrfFor(relToNeighbor asrel.Rel) uint32 {
	switch relToNeighbor {
	case asrel.P2C:
		return p.LocCustomer
	case asrel.P2P:
		return p.LocPeer
	case asrel.C2P:
		return p.LocProvider
	default:
		return p.LocPeer
	}
}

// Leak is a scoped route-leak rule: AS At re-exports routes learned from
// neighbor Via to neighbor To even when its export policy would not.
type Leak struct {
	At  asrel.ASN
	Via asrel.ASN
	To  asrel.ASN
}

// Internet is the generated ground-truth world.
type Internet struct {
	Cfg Config
	// ASes maps every ASN to its AS record; Order lists ASNs in
	// creation order (ascending).
	ASes  map[asrel.ASN]*AS
	Order []asrel.ASN
	// Graph4 / Graph6 are the per-plane link sets; Truth4 / Truth6 the
	// ground-truth relationship tables.
	Graph4, Graph6 *topology.Graph
	Truth4, Truth6 *asrel.Table
	// Tier1 lists the clique members.
	Tier1 []asrel.ASN
	// Hybrids lists the dual-stack links whose IPv6 relationship was
	// changed away from the IPv4 one, with their planted class.
	Hybrids []PlantedHybrid
	// DisputeA / DisputeB are the two tier-1s disconnected in IPv6.
	DisputeA, DisputeB asrel.ASN
	// FreeTransitHub is the large AS handing out free IPv6 transit to
	// its settled IPv4 peers — the source of most H1 hybrids (the
	// Hurricane Electric analogue).
	FreeTransitHub asrel.ASN
	// OpenPeer is the large carrier with an open IPv6 peering policy:
	// many of its IPv4 customers peer with it settlement-free in IPv6,
	// making its customer links the bulk of the H2 hybrids.
	OpenPeer asrel.ASN
	// Leaks are the active route-leak rules (IPv6 plane).
	Leaks []Leak
	// Vantages are the collector peer ASes; VantageLocPrf marks those
	// whose feed carries LOCAL_PREF.
	Vantages      []asrel.ASN
	VantageLocPrf map[asrel.ASN]bool
}

// PlantedHybrid records one planted hybrid link and its ground truth.
type PlantedHybrid struct {
	Key   asrel.LinkKey
	V4    asrel.Rel // Lo→Hi orientation
	V6    asrel.Rel // Lo→Hi orientation
	Class asrel.HybridClass
}

// AS returns the AS record for asn, or nil when absent.
func (in *Internet) AS(asn asrel.ASN) *AS { return in.ASes[asn] }

// GraphFor returns the link graph of the given plane.
func (in *Internet) GraphFor(af asrel.AF) *topology.Graph {
	if af == asrel.IPv6 {
		return in.Graph6
	}
	return in.Graph4
}

// TruthFor returns the ground-truth relationship table of the plane.
func (in *Internet) TruthFor(af asrel.AF) *asrel.Table {
	if af == asrel.IPv6 {
		return in.Truth6
	}
	return in.Truth4
}

// PrefixesFor returns the prefixes the AS originates in the plane.
func (a *AS) PrefixesFor(af asrel.AF) []netip.Prefix {
	if af == asrel.IPv6 {
		return a.Prefixes6
	}
	return a.Prefixes4
}

// DualStackLinks returns the canonical keys of links present in both
// planes, in deterministic order.
func (in *Internet) DualStackLinks() []asrel.LinkKey {
	var out []asrel.LinkKey
	for _, k := range in.Graph6.LinkKeys() {
		if in.Graph4.HasLink(k.Lo, k.Hi) {
			out = append(out, k)
		}
	}
	return out
}

// v4Prefix derives the i-th synthetic IPv4 prefix (a /24 from 10/8).
func v4Prefix(i int) netip.Prefix {
	if i < 0 || i >= 1<<16 {
		panic(fmt.Sprintf("gen: v4 prefix index %d out of range", i))
	}
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)
}

// v6Prefix derives the i-th synthetic IPv6 prefix (a /48 from the
// 2001:db8::/32 documentation block).
func v6Prefix(i int) netip.Prefix {
	if i < 0 || i >= 1<<16 {
		panic(fmt.Sprintf("gen: v6 prefix index %d out of range", i))
	}
	var raw [16]byte
	raw[0], raw[1] = 0x20, 0x01
	raw[2], raw[3] = 0x0d, 0xb8
	raw[4], raw[5] = byte(i>>8), byte(i)
	return netip.PrefixFrom(netip.AddrFrom16(raw), 48)
}
