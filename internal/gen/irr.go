package gen

import (
	"fmt"
	"io"

	"hybridrel/internal/rpsl"
)

// IRRObjects renders the synthetic Internet Routing Registry: one
// aut-num object per community-defining AS. Documented schemes carry
// remark lines in one of several operator dialects; undocumented
// adopters appear without usable remarks (their communities stay
// uninterpretable, as in the real IRR).
func (in *Internet) IRRObjects() []rpsl.AutNum {
	var objs []rpsl.AutNum
	for _, asn := range in.Order {
		a := in.ASes[asn]
		p := &a.Policy
		if !p.DefinesCommunities {
			continue
		}
		o := rpsl.AutNum{
			ASN:    asn,
			Name:   fmt.Sprintf("SYNTH-AS%d", uint32(asn)),
			Descr:  fmt.Sprintf("Synthetic autonomous system %d", uint32(asn)),
			Source: "SYNTHIRR",
		}
		if p.Documented {
			o.Remarks = dialectRemarks(uint32(asn), p)
		} else {
			o.Remarks = []string{"communities available on request"}
		}
		objs = append(objs, o)
	}
	return objs
}

// WriteIRR serializes the IRR database.
func (in *Internet) WriteIRR(w io.Writer) error {
	return rpsl.Write(w, in.IRRObjects())
}

// dialectRemarks renders the community documentation in the AS's remark
// dialect. Every dialect must classify correctly under the miner's
// keyword rules; that property is pinned by tests.
func dialectRemarks(asn uint32, p *Policy) []string {
	var out []string
	switch p.Dialect {
	case 1:
		out = append(out,
			fmt.Sprintf("%d:%d customer routes", asn, p.CustomerTag),
			fmt.Sprintf("%d:%d peer routes", asn, p.PeerTag),
			fmt.Sprintf("%d:%d provider routes", asn, p.ProviderTag),
		)
		for i, te := range p.TETags {
			out = append(out, fmt.Sprintf("%d:%d traffic engineering action %d", asn, te, i+1))
		}
	case 2:
		out = append(out,
			"--- community scheme ---",
			fmt.Sprintf("%d:%d tagged on ingress from customer", asn, p.CustomerTag),
			fmt.Sprintf("%d:%d tagged on ingress from peer", asn, p.PeerTag),
			fmt.Sprintf("%d:%d tagged on ingress from upstream transit", asn, p.ProviderTag),
		)
		for _, te := range p.TETags {
			out = append(out, fmt.Sprintf("%d:%d set local-pref 80 (backup)", asn, te))
		}
	default:
		out = append(out,
			fmt.Sprintf("%d:%d routes learned from customers", asn, p.CustomerTag),
			fmt.Sprintf("%d:%d routes learned from peers", asn, p.PeerTag),
			fmt.Sprintf("%d:%d routes learned from upstream providers", asn, p.ProviderTag),
		)
		for _, te := range p.TETags {
			out = append(out, fmt.Sprintf("%d:%d prepend 2x on export", asn, te))
		}
	}
	return out
}
