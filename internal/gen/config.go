// Package gen builds the synthetic Internet that substitutes for the
// August 2010 RouteViews/RIPE RIS dataset: a tiered AS-level topology
// with ground-truth IPv4 and IPv6 relationships, a planted population of
// hybrid dual-stack links matching the mix reported by Giotsas & Zhou, a
// partitioned IPv6 tier-1 clique (the AS6939/AS174 peering-dispute
// analogue), per-AS BGP Communities schemes and LocPrf policies, route
// leak rules, prefix originations, and vantage-point selection.
//
// The generator is fully deterministic for a given Config: all
// randomness flows from one seed and no map iteration order reaches the
// output.
package gen

// Config holds every generator knob. The zero value is not useful;
// start from DefaultConfig or SmallConfig and override.
type Config struct {
	// Seed drives all randomness. Same seed, same Internet.
	Seed int64

	// NumASes is the total number of ASes in the IPv4 plane.
	NumASes int
	// NumTier1 is the size of the tier-1 clique.
	NumTier1 int
	// TransitFraction is the probability that a non-tier-1 AS is a
	// transit provider rather than a stub.
	TransitFraction float64
	// MaxProviders caps multihoming; every non-tier-1 AS gets at least
	// one provider and each extra with probability ExtraProviderProb.
	MaxProviders      int
	ExtraProviderProb float64
	// TransitPeerAvg is the mean number of peering links a transit AS
	// initiates toward other transit ASes.
	TransitPeerAvg float64
	// StubPeerProb is the probability that a stub initiates one peering
	// (IXP-style) link with another stub.
	StubPeerProb float64

	// V6TransitProb / V6StubProb control IPv6 enablement per tier
	// (tier-1 ASes are always IPv6-enabled).
	V6TransitProb float64
	V6StubProb    float64
	// DualStackLinkProb is the probability that a v4 link between two
	// IPv6-enabled ASes also carries an IPv6 session.
	DualStackLinkProb float64
	// V6OnlyPeerings is the number of additional IPv6-only peering
	// links among IPv6 transit ASes (the dense 2010 v6 peering mesh).
	V6OnlyPeerings int

	// Dispute disconnects two tier-1 ASes in the IPv6 plane only,
	// partitioning their exclusive customer cones (valley-free-wise).
	Dispute bool
	// NumRelaxers is how many multihomed customers of both disputants
	// leak routes between them to restore reachability.
	NumRelaxers int
	// NumNoiseLeakers is how many additional ASes carry a scoped route
	// leak (misconfiguration / TE), creating unnecessary valley paths.
	NumNoiseLeakers int

	// HubPeerings is the size of the free-transit hub's settlement-free
	// IPv4 peering mesh with other large networks — the candidate pool
	// its free IPv6 transit offer converts into H1 hybrids.
	HubPeerings int
	// HubH1Bias multiplies the selection weight of hub links during H1
	// planting, concentrating hybrids on the hub as observed in 2010.
	HubH1Bias float64

	// HybridFraction is the target fraction of dual-stack links whose
	// IPv6 relationship is changed from the IPv4 one.
	HybridFraction float64
	// HybridH1Frac is the share of hybrids of class H1 (v4 p2p → v6
	// transit); the paper reports 67%. The rest become H2 except for a
	// single planted H3 reversal.
	HybridH1Frac float64

	// Community scheme adoption and propagation behaviour.
	CommunityAdoptTransit float64 // transit & tier-1 ASes defining relationship communities
	CommunityAdoptStub    float64
	CommunityStripProb    float64 // transit ASes scrubbing communities on export
	IRRDocumentedProb     float64 // adopters whose scheme appears in the IRR

	// TEProb is the probability that a vantage RIB entry carries a
	// traffic-engineering LocPrf override plus the matching TE community.
	TEProb float64

	// ExtraPrefixLargeAS gives the highest-degree IPv6 ASes additional
	// originated prefixes, matching the fatter origination of large
	// networks.
	ExtraPrefixLargeAS int

	// NumVantages is the number of collector peer ASes; VantageLocPrfFrac
	// of them provide iBGP-style feeds that include LOCAL_PREF.
	NumVantages       int
	VantageLocPrfFrac float64
}

// DefaultConfig is the experiment-scale configuration: the ratios land
// near the paper's headline numbers and the absolute counts are a
// laptop-friendly scale-down of August 2010 (≈12k v4 ASes, ≈3k v6 ASes).
func DefaultConfig() Config {
	return Config{
		Seed:                  42,
		NumASes:               12000,
		NumTier1:              10,
		TransitFraction:       0.16,
		MaxProviders:          3,
		ExtraProviderProb:     0.45,
		TransitPeerAvg:        2.6,
		StubPeerProb:          0.06,
		V6TransitProb:         0.62,
		V6StubProb:            0.14,
		DualStackLinkProb:     0.80,
		V6OnlyPeerings:        2400,
		Dispute:               true,
		NumRelaxers:           4,
		NumNoiseLeakers:       90,
		HubPeerings:           48,
		HubH1Bias:             6,
		HybridFraction:        0.13,
		HybridH1Frac:          0.67,
		CommunityAdoptTransit: 0.84,
		CommunityAdoptStub:    0.40,
		CommunityStripProb:    0.12,
		IRRDocumentedProb:     0.90,
		TEProb:                0.05,
		ExtraPrefixLargeAS:    2,
		NumVantages:           100,
		VantageLocPrfFrac:     0.35,
	}
}

// SmallConfig is the test-scale configuration: the same structure at
// roughly 1/20 the size, fast enough for unit tests.
func SmallConfig() Config {
	c := DefaultConfig()
	c.NumASes = 600
	c.NumTier1 = 6
	c.V6OnlyPeerings = 120
	c.NumRelaxers = 2
	c.NumNoiseLeakers = 4
	c.HubPeerings = 14
	c.NumVantages = 24
	return c
}

// validate reports configuration errors early rather than producing a
// degenerate Internet.
func (c Config) validate() error {
	switch {
	case c.NumTier1 < 2:
		return errConfig("NumTier1 must be at least 2")
	case c.NumASes < c.NumTier1+10:
		return errConfig("NumASes too small for the tier structure")
	case c.NumASes > 60000:
		return errConfig("NumASes above 60000 exceeds 16-bit community ASN space")
	case c.MaxProviders < 1:
		return errConfig("MaxProviders must be at least 1")
	case c.HybridFraction < 0 || c.HybridFraction > 0.5:
		return errConfig("HybridFraction out of range [0, 0.5]")
	case c.NumVantages < 1:
		return errConfig("NumVantages must be at least 1")
	}
	return nil
}

type errConfig string

func (e errConfig) Error() string { return "gen: invalid config: " + string(e) }
