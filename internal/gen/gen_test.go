package gen

import (
	"net/netip"
	"reflect"
	"testing"

	"hybridrel/internal/asrel"
	"hybridrel/internal/topology"
)

func buildSmall(t *testing.T) *Internet {
	t.Helper()
	in, err := Build(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestBuildValidation(t *testing.T) {
	bad := SmallConfig()
	bad.NumTier1 = 1
	if _, err := Build(bad); err == nil {
		t.Error("NumTier1=1 accepted")
	}
	bad = SmallConfig()
	bad.NumASes = 70000
	if _, err := Build(bad); err == nil {
		t.Error("NumASes beyond 16-bit community space accepted")
	}
	bad = SmallConfig()
	bad.HybridFraction = 0.9
	if _, err := Build(bad); err == nil {
		t.Error("absurd HybridFraction accepted")
	}
	bad = SmallConfig()
	bad.NumVantages = 0
	if _, err := Build(bad); err == nil {
		t.Error("zero vantages accepted")
	}
}

func TestBuildDeterminism(t *testing.T) {
	a := buildSmall(t)
	b := buildSmall(t)
	if !reflect.DeepEqual(a.Graph4.LinkKeys(), b.Graph4.LinkKeys()) {
		t.Error("v4 link sets differ between identical builds")
	}
	if !reflect.DeepEqual(a.Graph6.LinkKeys(), b.Graph6.LinkKeys()) {
		t.Error("v6 link sets differ between identical builds")
	}
	if !reflect.DeepEqual(a.Hybrids, b.Hybrids) {
		t.Error("hybrid sets differ between identical builds")
	}
	if !reflect.DeepEqual(a.Vantages, b.Vantages) {
		t.Error("vantage sets differ between identical builds")
	}
	if !reflect.DeepEqual(a.Leaks, b.Leaks) {
		t.Error("leak sets differ between identical builds")
	}
	// A different seed must actually change something.
	cfg := SmallConfig()
	cfg.Seed = 43
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Graph4.LinkKeys(), c.Graph4.LinkKeys()) {
		t.Error("different seeds produced identical v4 topologies")
	}
}

func TestTier1Clique(t *testing.T) {
	in := buildSmall(t)
	if len(in.Tier1) != in.Cfg.NumTier1 {
		t.Fatalf("tier-1 count = %d", len(in.Tier1))
	}
	for i, a := range in.Tier1 {
		for _, z := range in.Tier1[i+1:] {
			if !in.Graph4.HasLink(a, z) {
				t.Errorf("clique link %s-%s missing in v4", a, z)
			}
			if in.Truth4.Get(a, z) != asrel.P2P {
				t.Errorf("clique link %s-%s not p2p", a, z)
			}
		}
	}
}

func TestEveryLinkHasTruth(t *testing.T) {
	in := buildSmall(t)
	for _, k := range in.Graph4.LinkKeys() {
		if !in.Truth4.GetKey(k).Known() {
			t.Fatalf("v4 link %s without ground truth", k)
		}
	}
	for _, k := range in.Graph6.LinkKeys() {
		if !in.Truth6.GetKey(k).Known() {
			t.Fatalf("v6 link %s without ground truth", k)
		}
	}
}

func TestProvidersExist(t *testing.T) {
	in := buildSmall(t)
	for _, asn := range in.Order {
		a := in.ASes[asn]
		if a.Tier == topology.Tier1 {
			continue
		}
		if in.Graph4.ProviderDegree(in.Truth4, asn) == 0 {
			t.Errorf("%s has no v4 provider", asn)
		}
		if asn == in.FreeTransitHub {
			// The hub is transit-free in IPv6 by design.
			if in.Graph6.ProviderDegree(in.Truth6, asn) != 0 {
				t.Errorf("hub %s has a v6 provider", asn)
			}
			continue
		}
		if a.IPv6 && in.Graph6.ProviderDegree(in.Truth6, asn) == 0 {
			t.Errorf("%s has no v6 provider", asn)
		}
	}
}

func TestDispute(t *testing.T) {
	in := buildSmall(t)
	if in.DisputeA == 0 || in.DisputeB == 0 {
		t.Fatal("disputants not set")
	}
	// The first disputant is the free-transit hub (paper footnote: both
	// AS6939 and AS174 are transit-free in the IPv6 plane).
	if in.FreeTransitHub != 0 && in.DisputeA != in.FreeTransitHub {
		t.Errorf("DisputeA = %s, want the hub %s", in.DisputeA, in.FreeTransitHub)
	}
	if in.Graph6.HasLink(in.DisputeA, in.DisputeB) {
		t.Error("disputants linked in v6 despite the dispute")
	}
	// Relaxer leaks bridge the dispute in both directions.
	var ab, ba int
	for _, l := range in.Leaks {
		if l.Via == in.DisputeA && l.To == in.DisputeB {
			ab++
		}
		if l.Via == in.DisputeB && l.To == in.DisputeA {
			ba++
		}
	}
	if ab == 0 || ba == 0 {
		t.Errorf("relaxer leaks missing: A→B %d, B→A %d", ab, ba)
	}
}

func TestLeaksReferenceNeighbors(t *testing.T) {
	in := buildSmall(t)
	if len(in.Leaks) == 0 {
		t.Fatal("no leaks generated")
	}
	for _, l := range in.Leaks {
		if !in.Graph6.HasLink(l.At, l.Via) {
			t.Errorf("leak at %s via non-neighbor %s", l.At, l.Via)
		}
		if !in.Graph6.HasLink(l.At, l.To) {
			t.Errorf("leak at %s to non-neighbor %s", l.At, l.To)
		}
		if l.Via == l.To {
			t.Errorf("degenerate leak at %s", l.At)
		}
	}
}

func TestHybridPlanting(t *testing.T) {
	in := buildSmall(t)
	duals := in.DualStackLinks()
	if len(duals) == 0 {
		t.Fatal("no dual-stack links")
	}
	if len(in.Hybrids) == 0 {
		t.Fatal("no hybrids planted")
	}
	frac := float64(len(in.Hybrids)) / float64(len(duals))
	if frac < 0.07 || frac > 0.20 {
		t.Errorf("hybrid fraction = %.3f, want near %.2f", frac, in.Cfg.HybridFraction)
	}
	var h1, h2, h3 int
	for _, h := range in.Hybrids {
		v4 := in.Truth4.GetKey(h.Key)
		v6 := in.Truth6.GetKey(h.Key)
		if v4 != h.V4 || v6 != h.V6 {
			t.Errorf("hybrid %s record does not match tables", h.Key)
		}
		got := asrel.Classify(v4, v6)
		if got != h.Class || got == asrel.NotHybrid {
			t.Errorf("hybrid %s class = %s (recorded %s)", h.Key, got, h.Class)
		}
		switch got {
		case asrel.HybridPeerTransit:
			h1++
		case asrel.HybridTransitPeer:
			h2++
		case asrel.HybridReversed:
			h3++
		}
	}
	if h3 > 1 {
		t.Errorf("planted %d H3 reversals, want at most 1", h3)
	}
	h1frac := float64(h1) / float64(len(in.Hybrids))
	if h1frac < 0.5 || h1frac > 0.85 {
		t.Errorf("H1 share = %.2f, want near %.2f", h1frac, in.Cfg.HybridH1Frac)
	}
	if h2 == 0 {
		t.Error("no H2 hybrids planted")
	}
}

func TestNonHybridDualLinksAgree(t *testing.T) {
	in := buildSmall(t)
	hybrid := make(map[asrel.LinkKey]bool)
	for _, h := range in.Hybrids {
		hybrid[h.Key] = true
	}
	for _, k := range in.DualStackLinks() {
		if hybrid[k] {
			continue
		}
		if in.Truth4.GetKey(k) != in.Truth6.GetKey(k) {
			t.Errorf("non-hybrid dual link %s disagrees: v4=%s v6=%s",
				k, in.Truth4.GetKey(k), in.Truth6.GetKey(k))
		}
	}
}

func TestPolicies(t *testing.T) {
	in := buildSmall(t)
	adopters := 0
	for _, asn := range in.Order {
		p := in.ASes[asn].Policy
		if p.LocCustomer <= p.LocPeer || p.LocPeer <= p.LocProvider {
			t.Fatalf("%s LocPrf bands not ordered: %d/%d/%d",
				asn, p.LocCustomer, p.LocPeer, p.LocProvider)
		}
		if p.DefinesCommunities {
			adopters++
			if p.CustomerTag == p.PeerTag || p.PeerTag == p.ProviderTag || p.CustomerTag == p.ProviderTag {
				t.Fatalf("%s has colliding relationship tags", asn)
			}
			if tag, ok := p.TagFor(asrel.P2C); !ok || tag != p.CustomerTag {
				t.Fatalf("TagFor(P2C) broken for %s", asn)
			}
			if _, ok := p.TagFor(asrel.S2S); ok {
				t.Fatalf("TagFor(S2S) should be undefined")
			}
			for _, te := range p.TETags {
				if te == p.CustomerTag || te == p.PeerTag || te == p.ProviderTag {
					t.Fatalf("%s TE tag collides with relationship tag", asn)
				}
			}
		}
		if p.LocPrfFor(asrel.P2C) != p.LocCustomer || p.LocPrfFor(asrel.C2P) != p.LocProvider {
			t.Fatalf("LocPrfFor broken for %s", asn)
		}
	}
	if adopters < in.Cfg.NumASes/4 {
		t.Errorf("only %d community adopters", adopters)
	}
}

func TestPrefixes(t *testing.T) {
	in := buildSmall(t)
	seen4 := make(map[netip.Prefix]bool)
	seen6 := make(map[netip.Prefix]bool)
	for _, asn := range in.Order {
		a := in.ASes[asn]
		if len(a.Prefixes4) == 0 {
			t.Fatalf("%s has no v4 prefix", asn)
		}
		for _, p := range a.Prefixes4 {
			if seen4[p] {
				t.Fatalf("duplicate v4 prefix %v", p)
			}
			seen4[p] = true
			if !p.Addr().Is4() {
				t.Fatalf("v4 prefix %v is not IPv4", p)
			}
		}
		if a.IPv6 && len(a.Prefixes6) == 0 {
			t.Fatalf("v6 AS %s has no v6 prefix", asn)
		}
		if !a.IPv6 && len(a.Prefixes6) != 0 {
			t.Fatalf("non-v6 AS %s originates v6 prefixes", asn)
		}
		for _, p := range a.Prefixes6 {
			if seen6[p] {
				t.Fatalf("duplicate v6 prefix %v", p)
			}
			seen6[p] = true
			if !p.Addr().Is6() {
				t.Fatalf("v6 prefix %v is not IPv6", p)
			}
		}
		if a.PrefixesFor(asrel.IPv4)[0] != a.Prefixes4[0] {
			t.Fatal("PrefixesFor(IPv4) broken")
		}
	}
	// Some large AS should have extra v6 prefixes.
	extra := false
	for _, asn := range in.Order {
		if len(in.ASes[asn].Prefixes6) > 1 {
			extra = true
		}
	}
	if !extra {
		t.Error("no AS received extra v6 prefixes")
	}
}

func TestVantages(t *testing.T) {
	in := buildSmall(t)
	if len(in.Vantages) != in.Cfg.NumVantages {
		t.Fatalf("vantage count = %d, want %d", len(in.Vantages), in.Cfg.NumVantages)
	}
	seen := make(map[asrel.ASN]bool)
	locprf := 0
	hasA, hasB := false, false
	for _, v := range in.Vantages {
		if seen[v] {
			t.Fatalf("duplicate vantage %s", v)
		}
		seen[v] = true
		if !in.ASes[v].IPv6 {
			t.Errorf("vantage %s is not IPv6-capable", v)
		}
		if in.VantageLocPrf[v] {
			locprf++
		}
		if v == in.DisputeA {
			hasA = true
		}
		if v == in.DisputeB {
			hasB = true
		}
	}
	if !hasA || !hasB {
		t.Error("disputants not among vantages")
	}
	if locprf == 0 {
		t.Error("no LocPrf feeds selected")
	}
}

func TestV6SubsetInvariants(t *testing.T) {
	in := buildSmall(t)
	dual, v6only := 0, 0
	for _, k := range in.Graph6.LinkKeys() {
		if !in.ASes[k.Lo].IPv6 || !in.ASes[k.Hi].IPv6 {
			t.Fatalf("v6 link %s touches a non-v6 AS", k)
		}
		if in.Graph4.HasLink(k.Lo, k.Hi) {
			dual++
		} else {
			v6only++
		}
	}
	if dual == 0 || v6only == 0 {
		t.Errorf("link mix degenerate: dual=%d v6only=%d", dual, v6only)
	}
	if got := len(in.DualStackLinks()); got != dual {
		t.Errorf("DualStackLinks = %d, counted %d", got, dual)
	}
}

func TestGraphAndTruthAccessors(t *testing.T) {
	in := buildSmall(t)
	if in.GraphFor(asrel.IPv4) != in.Graph4 || in.GraphFor(asrel.IPv6) != in.Graph6 {
		t.Error("GraphFor broken")
	}
	if in.TruthFor(asrel.IPv4) != in.Truth4 || in.TruthFor(asrel.IPv6) != in.Truth6 {
		t.Error("TruthFor broken")
	}
	if in.AS(in.Order[0]) == nil || in.AS(99999) != nil {
		t.Error("AS accessor broken")
	}
}

func TestPrefixHelpersPanicOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("v4Prefix out of range did not panic")
		}
	}()
	v4Prefix(1 << 16)
}
