package gen

import (
	"math"
	"math/rand"
	"sort"

	"hybridrel/internal/asrel"
	"hybridrel/internal/topology"
)

// Build generates a complete synthetic Internet from cfg. It is
// deterministic: equal configs produce identical Internets.
func Build(cfg Config) (*Internet, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	b := &builder{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		in: &Internet{
			Cfg:           cfg,
			ASes:          make(map[asrel.ASN]*AS, cfg.NumASes),
			Graph4:        topology.New(),
			Graph6:        topology.New(),
			Truth4:        asrel.NewTable(),
			Truth6:        asrel.NewTable(),
			VantageLocPrf: make(map[asrel.ASN]bool),
		},
	}
	b.makeASes()
	b.buildV4()
	b.buildV6()
	b.plantHybrids()
	b.assignLeaks()
	b.assignPolicies()
	b.assignPrefixes()
	b.pickVantages()
	return b.in, nil
}

type builder struct {
	cfg Config
	rng *rand.Rand
	in  *Internet
	// customers counts p2c edges per AS for preferential attachment.
	customers map[asrel.ASN]int
	transits  []asrel.ASN    // tier-1 + transit ASes in creation order
	layers    [4][]asrel.ASN // [0] = tier-1, [1..3] = transit layers
	stubs     []asrel.ASN
}

func (b *builder) makeASes() {
	in := b.in
	b.customers = make(map[asrel.ASN]int, b.cfg.NumASes)
	for i := 1; i <= b.cfg.NumASes; i++ {
		asn := asrel.ASN(i)
		a := &AS{ASN: asn}
		switch {
		case i <= b.cfg.NumTier1:
			a.Tier = topology.Tier1
			in.Tier1 = append(in.Tier1, asn)
			b.layers[0] = append(b.layers[0], asn)
		case b.rng.Float64() < b.cfg.TransitFraction:
			a.Tier = topology.Tier2
			// The transit hierarchy: national carriers, regional
			// networks, access networks.
			r := b.rng.Float64()
			switch {
			case r < 0.15:
				a.Layer = 1
			case r < 0.50:
				a.Layer = 2
			default:
				a.Layer = 3
			}
			b.layers[a.Layer] = append(b.layers[a.Layer], asn)
		default:
			a.Tier = topology.TierStub
			b.stubs = append(b.stubs, asn)
		}
		if a.Tier != topology.TierStub {
			b.transits = append(b.transits, asn)
		}
		in.ASes[asn] = a
		in.Order = append(in.Order, asn)
		in.Graph4.AddNode(asn)
	}
}

// providerClasses returns the candidate classes an AS buys transit from,
// in preference order with selection weights. Class 0 is tier-1.
func providerClasses(a *AS) []struct {
	class int
	mult  float64
} {
	type cw = struct {
		class int
		mult  float64
	}
	switch {
	case a.Tier == topology.Tier2 && a.Layer == 1:
		return []cw{{0, 1.0}}
	case a.Tier == topology.Tier2 && a.Layer == 2:
		return []cw{{1, 1.0}, {0, 0.15}}
	case a.Tier == topology.Tier2 && a.Layer == 3:
		// Access networks chain below regionals and below each other —
		// the deep tails of the 2010 (IPv6 especially) hierarchy.
		return []cw{{2, 1.0}, {3, 0.45}, {1, 0.12}}
	default: // stub
		return []cw{{3, 1.0}, {2, 0.30}, {1, 0.05}, {0, 0.01}}
	}
}

// buildV4 wires the IPv4 plane: the tier-1 clique, layered provider
// links chosen by sub-linear preferential attachment (providers always
// have a smaller ASN, so the v4 transit hierarchy is acyclic), lateral
// transit peering, stub IXP peering, and the free-transit hub's wide
// peering mesh.
func (b *builder) buildV4() {
	in := b.in
	// Tier-1 clique.
	for i, a := range in.Tier1 {
		for _, z := range in.Tier1[i+1:] {
			in.Graph4.AddLink(a, z)
			in.Truth4.Set(a, z, asrel.P2P)
		}
	}
	// Provider links.
	for _, asn := range in.Order {
		a := in.ASes[asn]
		if a.Tier == topology.Tier1 {
			continue
		}
		n := 1
		for n < b.cfg.MaxProviders && b.rng.Float64() < b.cfg.ExtraProviderProb {
			n++
		}
		for _, p := range b.pickProviders(a, n) {
			if in.Graph4.AddLink(p, asn) {
				in.Truth4.Set(p, asn, asrel.P2C)
				b.customers[p]++
			}
		}
	}
	// Lateral transit peering within each layer.
	for _, t := range b.transits {
		at := in.ASes[t]
		if at.Tier == topology.Tier1 {
			continue
		}
		k := poisson(b.rng, b.cfg.TransitPeerAvg)
		peersOK := func(c asrel.ASN) bool {
			ac := in.ASes[c]
			return c != t && ac.Tier == topology.Tier2 && ac.Layer == at.Layer &&
				!in.Graph4.HasLink(t, c)
		}
		for j := 0; j < k; j++ {
			peer := b.weightedTransit(peersOK)
			if peer == 0 {
				break
			}
			in.Graph4.AddLink(t, peer)
			in.Truth4.Set(t, peer, asrel.P2P)
		}
	}
	// Stub IXP peering.
	for _, s := range b.stubs {
		if b.rng.Float64() >= b.cfg.StubPeerProb || len(b.stubs) < 2 {
			continue
		}
		o := b.stubs[b.rng.Intn(len(b.stubs))]
		if o != s && !in.Graph4.HasLink(s, o) {
			in.Graph4.AddLink(s, o)
			in.Truth4.Set(s, o, asrel.P2P)
		}
	}
	b.placeHub()
}

// placeHub selects the free-transit hub — the largest national carrier —
// and gives it the wide settlement-free IPv4 peering mesh that its free
// IPv6 transit offer will later convert into H1 hybrids.
func (b *builder) placeHub() {
	in := b.in
	pool := b.layers[1]
	if len(pool) == 0 {
		pool = b.layers[2]
	}
	if len(pool) == 0 {
		return
	}
	hub := pool[0]
	for _, c := range pool {
		if b.customers[c] > b.customers[hub] || (b.customers[c] == b.customers[hub] && c < hub) {
			hub = c
		}
	}
	in.FreeTransitHub = hub
	// The open-peering carrier is the next-largest national network: in
	// IPv6 it converts most of its customer relationships into
	// settlement-free peerings (the H2 population).
	for _, c := range pool {
		if c == hub {
			continue
		}
		if in.OpenPeer == 0 || b.customers[c] > b.customers[in.OpenPeer] ||
			(b.customers[c] == b.customers[in.OpenPeer] && c < in.OpenPeer) {
			in.OpenPeer = c
		}
	}
	// Peer the hub with the fattest access aggregators (layer 3): wide,
	// flat customer bases, historically the main takers of free IPv6
	// transit.
	var cands []asrel.ASN
	for _, c := range b.layers[3] {
		if c != hub && !in.Graph4.HasLink(hub, c) {
			cands = append(cands, c)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if b.customers[cands[i]] != b.customers[cands[j]] {
			return b.customers[cands[i]] > b.customers[cands[j]]
		}
		return cands[i] < cands[j]
	})
	added := 0
	for _, c := range cands {
		if added >= b.cfg.HubPeerings {
			break
		}
		in.Graph4.AddLink(hub, c)
		in.Truth4.Set(hub, c, asrel.P2P)
		added++
	}
}

// pickProviders selects n distinct providers for a from its preferred
// layers, all with smaller ASNs, weighted by sub-linear preferential
// attachment. When the preferred classes have no earlier member yet, the
// search relaxes upward and ultimately lands on a tier-1.
func (b *builder) pickProviders(a *AS, n int) []asrel.ASN {
	type cand struct {
		asn  asrel.ASN
		mult float64
	}
	var cands []cand
	for _, cw := range providerClasses(a) {
		for _, t := range b.layers[cw.class] {
			if t >= a.ASN {
				break
			}
			cands = append(cands, cand{asn: t, mult: cw.mult})
		}
	}
	if len(cands) == 0 {
		// Nothing from the preferred classes exists yet: climb to any
		// earlier transit, then to the tier-1s.
		for _, t := range b.transits {
			if t >= a.ASN {
				break
			}
			cands = append(cands, cand{asn: t, mult: 1})
		}
		if len(cands) == 0 {
			for _, t := range b.in.Tier1 {
				cands = append(cands, cand{asn: t, mult: 1})
			}
		}
	}
	weight := func(c cand) float64 {
		base := float64(b.customers[c.asn] + 1)
		if b.in.ASes[c.asn].Tier == topology.Tier1 {
			base = float64(b.customers[c.asn] + 25)
		}
		return c.mult * math.Pow(base, 0.72)
	}
	chosen := make([]asrel.ASN, 0, n)
	taken := make(map[asrel.ASN]bool, n)
	for len(chosen) < n {
		total := 0.0
		for _, c := range cands {
			if !taken[c.asn] {
				total += weight(c)
			}
		}
		if total <= 0 {
			break
		}
		x := b.rng.Float64() * total
		for _, c := range cands {
			if taken[c.asn] {
				continue
			}
			x -= weight(c)
			if x <= 0 {
				chosen = append(chosen, c.asn)
				taken[c.asn] = true
				break
			}
		}
	}
	return chosen
}

// weightedTransit picks one transit AS weighted by customer count among
// those satisfying ok, or 0 when none qualifies.
func (b *builder) weightedTransit(ok func(asrel.ASN) bool) asrel.ASN {
	total := 0.0
	for _, c := range b.transits {
		if ok(c) {
			total += float64(b.customers[c] + 1)
		}
	}
	if total <= 0 {
		return 0
	}
	x := b.rng.Float64() * total
	for _, c := range b.transits {
		if !ok(c) {
			continue
		}
		x -= float64(b.customers[c] + 1)
		if x <= 0 {
			return c
		}
	}
	return 0
}

// buildV6 derives the IPv6 plane: per-tier enablement, sampled
// dual-stack sessions, forced v6 transit for otherwise-orphaned ASes
// (the tunnel-broker effect), the dense v6-only peering mesh, and the
// tier-1 peering dispute.
func (b *builder) buildV6() {
	in := b.in
	for _, asn := range in.Order {
		a := in.ASes[asn]
		switch a.Tier {
		case topology.Tier1:
			a.IPv6 = true
		case topology.Tier2:
			a.IPv6 = b.rng.Float64() < b.cfg.V6TransitProb
		default:
			a.IPv6 = b.rng.Float64() < b.cfg.V6StubProb
		}
	}
	if in.FreeTransitHub != 0 {
		// The free-transit hub is the most aggressive IPv6 deployer.
		in.ASes[in.FreeTransitHub].IPv6 = true
	}
	if in.OpenPeer != 0 {
		in.ASes[in.OpenPeer].IPv6 = true
	}
	if b.cfg.Dispute {
		// The paper's footnote describes the dispute between AS6939 and
		// AS174: *both transit-free in the IPv6 plane*. The free-transit
		// hub is the first disputant; the other is a tier-1.
		if in.FreeTransitHub != 0 {
			in.DisputeA = in.FreeTransitHub
		} else {
			in.DisputeA = in.Tier1[0]
		}
		// The second disputant is the latest (smallest-cone) tier-1:
		// the real disputants' *exclusive* customer cones were a small
		// slice of the IPv6 world.
		for i := len(in.Tier1) - 1; i >= 0; i-- {
			if in.Tier1[i] != in.DisputeA {
				in.DisputeB = in.Tier1[i]
				break
			}
		}
	}
	// Dual-stack sessions. The hub is transit-free in IPv6: its v4
	// provider links never carry a v6 session (it reaches the v6 world
	// entirely over peering), and the disputants share no v6 link.
	hub := in.FreeTransitHub
	for _, k := range in.Graph4.LinkKeys() {
		if !in.ASes[k.Lo].IPv6 || !in.ASes[k.Hi].IPv6 {
			continue
		}
		if b.cfg.Dispute && k == asrel.Key(in.DisputeA, in.DisputeB) {
			continue // the peering dispute: no v6 session at all
		}
		if hub != 0 && k.Contains(hub) && in.Truth4.Get(hub, k.Other(hub)) == asrel.C2P {
			continue // the hub buys no IPv6 transit
		}
		// The tier-1 clique was fully dual-stacked by 2010 (the dispute
		// pair excepted, handled above).
		if in.ASes[k.Lo].Tier == topology.Tier1 && in.ASes[k.Hi].Tier == topology.Tier1 {
			in.Graph6.AddLink(k.Lo, k.Hi)
			in.Truth6.SetKey(k, in.Truth4.GetKey(k))
			continue
		}
		// IPv6 multihoming lagged far behind IPv4 in 2010: transit
		// sessions dual-stack less often than peerings, leaving the v6
		// hierarchy closer to single-homed chains.
		p := b.cfg.DualStackLinkProb
		if in.Truth4.GetKey(k).Transit() {
			p *= 0.6
		}
		if b.rng.Float64() < p {
			in.Graph6.AddLink(k.Lo, k.Hi)
			in.Truth6.SetKey(k, in.Truth4.GetKey(k))
		}
	}
	// The hub peers settlement-free with every tier-1 except its
	// disputant — that is how a transit-free non-tier-1 reaches the
	// whole v6 Internet.
	if hub != 0 {
		for _, t := range in.Tier1 {
			if t == in.DisputeB || in.Graph6.HasLink(hub, t) {
				continue
			}
			in.Graph6.AddLink(hub, t)
			in.Truth6.Set(hub, t, asrel.P2P)
			if in.Graph4.Degree(hub) > 0 && in.Graph4.HasLink(hub, t) {
				// The v4 session is the hub's paid transit; the v6
				// session is a settlement-free peering — a ready-made
				// H2 hybrid (v4 transit / v6 p2p).
				b.recordHybrid(asrel.Key(hub, t))
			}
		}
	}
	// Every non-tier-1 v6 AS needs at least one v6 provider: first try
	// re-adding a skipped dual-stack provider link, then fall back to a
	// v6-only transit link (tunnel) from a layer-appropriate earlier v6
	// transit AS. The hub is exempt: it is transit-free by design.
	for _, asn := range in.Order {
		a := in.ASes[asn]
		if !a.IPv6 || a.Tier == topology.Tier1 || asn == hub {
			continue
		}
		if in.Graph6.ProviderDegree(in.Truth6, asn) > 0 {
			continue
		}
		fixed := false
		for _, p := range in.Graph4.Providers(in.Truth4, asn) {
			if in.ASes[p].IPv6 && in.Graph6.AddLink(p, asn) {
				in.Truth6.Set(p, asn, asrel.P2C)
				fixed = true
				break
			}
		}
		if fixed {
			continue
		}
		provider := b.v6TunnelProvider(a)
		if provider != 0 && in.Graph6.AddLink(provider, asn) {
			in.Truth6.Set(provider, asn, asrel.P2C)
		}
	}
	// IPv6-only peering mesh among v6 transit ASes. Links that exist in
	// v4 are excluded: they would silently become dual-stack links with
	// a conflicting relationship.
	var v6transit []asrel.ASN
	for _, t := range b.transits {
		if in.ASes[t].IPv6 {
			v6transit = append(v6transit, t)
		}
	}
	for i := 0; i < b.cfg.V6OnlyPeerings && len(v6transit) > 2; i++ {
		x := v6transit[b.rng.Intn(len(v6transit))]
		y := v6transit[b.rng.Intn(len(v6transit))]
		if x == y || in.Graph4.HasLink(x, y) || in.Graph6.HasLink(x, y) {
			continue
		}
		in.Graph6.AddLink(x, y)
		in.Truth6.Set(x, y, asrel.P2P)
	}
}

// v6TunnelProvider picks a v6 transit provider with a smaller ASN from
// the AS's natural provider layers (keeping the base hierarchy deep and
// acyclic), or a non-disputant tier-1 for the earliest ASes.
func (b *builder) v6TunnelProvider(a *AS) asrel.ASN {
	for _, cw := range providerClasses(a) {
		var cands []asrel.ASN
		for _, t := range b.layers[cw.class] {
			if t >= a.ASN {
				break
			}
			if b.in.ASes[t].IPv6 {
				cands = append(cands, t)
			}
		}
		if len(cands) > 0 {
			return cands[b.rng.Intn(len(cands))]
		}
	}
	for _, t := range b.in.Tier1 {
		if t != b.in.DisputeA && t != b.in.DisputeB {
			return t
		}
	}
	return 0
}

// plantHybrids rewrites the IPv6 relationship of a HybridFraction share
// of dual-stack links: HybridH1Frac of them v4-p2p→v6-transit (H1), the
// rest v4-transit→v6-p2p (H2), and exactly one v4-p2c→v6-c2p reversal
// (H3), mirroring §3 of the paper. H1 selection is strongly biased
// toward the free-transit hub's peering links — the documented origin
// of most real H1 hybrids — and otherwise weighted by combined v6
// degree, so hybrids concentrate on tier-1/tier-2 ASes.
func (b *builder) plantHybrids() {
	in := b.in
	duals := in.DualStackLinks()
	if len(duals) == 0 {
		return
	}
	target := int(math.Round(b.cfg.HybridFraction * float64(len(duals))))
	if target == 0 {
		return
	}
	wantH1 := int(math.Round(b.cfg.HybridH1Frac * float64(target)))
	wantH3 := 0
	if target > wantH1 {
		wantH3 = 1
	}
	wantH2 := target - wantH1 - wantH3

	var peers, transits []asrel.LinkKey
	for _, k := range duals {
		// The second disputant (the Cogent analogue) refuses any IPv6
		// arrangement change — that refusal keeps the v6 plane
		// partitioned — so its links never turn hybrid. The hub's v4
		// peerings, by contrast, are exactly where H1 hybrids come
		// from; only its transit links are off-limits (H2/H3 would
		// cost it its v6 transit-free status).
		if b.cfg.Dispute && k.Contains(in.DisputeB) {
			continue
		}
		switch in.Truth4.GetKey(k) {
		case asrel.P2P:
			// Tier-1s do not take transit from each other in any plane:
			// the clique stays settlement-free.
			if in.ASes[k.Lo].Tier == topology.Tier1 && in.ASes[k.Hi].Tier == topology.Tier1 {
				continue
			}
			peers = append(peers, k)
		case asrel.P2C, asrel.C2P:
			if in.FreeTransitHub != 0 && k.Contains(in.FreeTransitHub) {
				continue
			}
			transits = append(transits, k)
		}
	}
	weight := func(k asrel.LinkKey) float64 {
		w := float64(in.Graph6.Degree(k.Lo) + in.Graph6.Degree(k.Hi))
		if in.FreeTransitHub != 0 && k.Contains(in.FreeTransitHub) {
			w *= b.cfg.HubH1Bias
		}
		return w
	}
	// H2 selection leans toward links at the very top of the hierarchy
	// (tier-1 / national carriers): their relaxed IPv6 peerings are the
	// mis-inferred deep branches whose pruning drives Figure 2's
	// diameter drop.
	top := func(a asrel.ASN) bool {
		as := in.ASes[a]
		return as.Tier == topology.Tier1 || as.Layer == 1
	}
	weightH2 := func(k asrel.LinkKey) float64 {
		w := weight(k)
		if top(k.Lo) && top(k.Hi) {
			w *= 8
		}
		// The open-peering carrier's customer links dominate the H2
		// population: its deep v4 cone is what single-plane inference
		// wrongly keeps in the v6 customer trees.
		if in.OpenPeer != 0 && k.Contains(in.OpenPeer) {
			w *= 12
		}
		return w
	}

	// H1: settled v4 peers exchanging free/trial IPv6 transit. The hub
	// is always the provider on its links; elsewhere the higher-degree
	// side provides.
	for _, k := range b.weightedLinks(peers, wantH1, weight, nil) {
		provider, customer := k.Lo, k.Hi
		switch {
		case in.FreeTransitHub != 0 && k.Contains(in.FreeTransitHub):
			provider = in.FreeTransitHub
			customer = k.Other(provider)
		case in.Graph6.Degree(k.Hi) > in.Graph6.Degree(k.Lo):
			provider, customer = k.Hi, k.Lo
		}
		in.Truth6.Set(provider, customer, asrel.P2C)
		b.recordHybrid(k)
	}
	// Free transit is a *second* connection: most of the hub's new
	// customers also keep (or light up) the IPv6 session of a paid
	// provider, so the hub's exclusive customer cone stays a modest
	// slice of the v6 world — as the real dispute's blast radius was.
	if in.FreeTransitHub != 0 {
		for _, h := range in.Hybrids {
			if !h.Key.Contains(in.FreeTransitHub) {
				continue
			}
			cust := h.Key.Other(in.FreeTransitHub)
			if in.Graph6.ProviderDegree(in.Truth6, cust) > 1 {
				continue
			}
			if b.rng.Float64() >= 0.8 {
				continue // a few networks do run IPv6 on free transit alone
			}
			for _, p := range in.Graph4.Providers(in.Truth4, cust) {
				if in.ASes[p].IPv6 && p != in.FreeTransitHub && in.Graph6.AddLink(p, cust) {
					in.Truth6.Set(p, cust, asrel.P2C)
					break
				}
			}
		}
	}
	// H2: v4 customers granted settlement-free IPv6 peering. The
	// customer must keep another v6 provider or it would lose all v6
	// transit.
	okH2 := func(k asrel.LinkKey) bool {
		cust := k.Lo
		if in.Truth4.GetKey(k) == asrel.P2C { // Lo is the provider
			cust = k.Hi
		}
		return in.Graph6.ProviderDegree(in.Truth6, cust) > 1
	}
	for _, k := range b.weightedLinks(transits, wantH2, weightH2, okH2) {
		// Re-check at apply time: an earlier flip in this batch may have
		// taken the customer's last spare provider.
		if !okH2(k) {
			continue
		}
		in.Truth6.SetKey(k, asrel.P2P)
		b.recordHybrid(k)
	}
	// H3: the single role reversal. The v4 provider gains a v6 provider
	// (so it must not be a tier-1, which stays transit-free), and the v4
	// customer loses this provider, so it must keep another one.
	okH3 := func(k asrel.LinkKey) bool {
		prov, cust := k.Lo, k.Hi
		if in.Truth4.GetKey(k) == asrel.C2P { // Hi is the provider
			prov, cust = k.Hi, k.Lo
		}
		if in.ASes[prov].Tier == topology.Tier1 {
			return false
		}
		return in.Graph6.ProviderDegree(in.Truth6, cust) > 1
	}
	for _, k := range b.weightedLinks(transits, wantH3, weight, okH3) {
		if !okH3(k) {
			continue
		}
		in.Truth6.SetKey(k, in.Truth4.GetKey(k).Invert())
		b.recordHybrid(k)
	}
	sort.Slice(in.Hybrids, func(i, j int) bool {
		a, z := in.Hybrids[i].Key, in.Hybrids[j].Key
		if a.Lo != z.Lo {
			return a.Lo < z.Lo
		}
		return a.Hi < z.Hi
	})
}

func (b *builder) recordHybrid(k asrel.LinkKey) {
	in := b.in
	in.Hybrids = append(in.Hybrids, PlantedHybrid{
		Key:   k,
		V4:    in.Truth4.GetKey(k),
		V6:    in.Truth6.GetKey(k),
		Class: asrel.Classify(in.Truth4.GetKey(k), in.Truth6.GetKey(k)),
	})
}

// weightedLinks samples up to n distinct links weighted by weight,
// skipping (and never retrying) links already hybrid or rejected by ok.
func (b *builder) weightedLinks(pool []asrel.LinkKey, n int, weight func(asrel.LinkKey) float64, ok func(asrel.LinkKey) bool) []asrel.LinkKey {
	if n <= 0 {
		return nil
	}
	taken := make(map[asrel.LinkKey]bool, len(b.in.Hybrids))
	for _, h := range b.in.Hybrids {
		taken[h.Key] = true
	}
	var out []asrel.LinkKey
	for attempts := 0; len(out) < n && attempts < 4*n+64; attempts++ {
		total := 0.0
		for _, k := range pool {
			if !taken[k] {
				total += weight(k)
			}
		}
		if total <= 0 {
			break
		}
		x := b.rng.Float64() * total
		for _, k := range pool {
			if taken[k] {
				continue
			}
			x -= weight(k)
			if x <= 0 {
				taken[k] = true // either used or permanently rejected
				if ok == nil || ok(k) {
					out = append(out, k)
				}
				break
			}
		}
	}
	return out
}

// poisson draws a Poisson variate by Knuth's method (fine for the small
// means used here).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	limit := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}
